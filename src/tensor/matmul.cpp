#include "tensor/matmul.hpp"

#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace ibrar {
namespace {

/// Rows per parallel block so tiny GEMMs stay serial: each block should carry
/// at least kMinParallelWork multiply-adds.
std::int64_t row_grain(std::int64_t k, std::int64_t n) {
  return runtime::grain_for(k * n);
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  // ikj ordering: the inner loop runs over contiguous rows of B and C, which
  // GCC/Clang vectorize well; a[i*k+p] is a scalar across the inner loop.
  // Rows of C are independent, so the row range splits across the pool with
  // bit-identical per-row arithmetic.
  runtime::parallel_for(0, m, row_grain(k, n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float* ci = c + i * n;
      const float* ai = a + i * k;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ai[p];
        if (av == 0.0f) continue;  // im2col matrices are often sparse post-ReLU
        const float* bp = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  gemm_accumulate(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: bad shapes");
  }
  const auto k = a.dim(0);  // shared dim
  const auto m = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  // C[i,j] = sum_p A[p,i] B[p,j]. Each block owns a contiguous row range of C
  // and walks p outermost, so B rows stream through cache once per block and
  // the per-element accumulation order matches the serial loop exactly.
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  runtime::parallel_for(0, m, row_grain(k, n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t p = 0; p < k; ++p) {
      const float* ap = pa + p * m;
      const float* bp = pb + p * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = ap[i];
        if (av == 0.0f) continue;
        float* ci = pc + i * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: bad shapes");
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // C[i,j] = dot(A_row_i, B_row_j): both rows contiguous, rows independent.
  runtime::parallel_for(0, m, row_grain(k, n), [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* ai = pa + i * k;
      float* ci = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = pb + j * k;
        float s = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) s += ai[p] * bj[p];
        ci[j] = s;
      }
    }
  });
  return c;
}

}  // namespace ibrar
