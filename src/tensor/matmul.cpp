#include "tensor/matmul.hpp"

#include <stdexcept>

#include "tensor/gemm_packed.hpp"

namespace ibrar {

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  gemm_packed(a, GemmLayout::kRowMajor, b, GemmLayout::kRowMajor, c, m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
              GemmLayout::kRowMajor, c.data().data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto k = a.dim(0);  // shared dim
  const auto m = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  // C = A^T B: the packed kernel reads A through its transposed layout, so no
  // transpose is ever materialized.
  gemm_packed(a.data().data(), GemmLayout::kTransposed, b.data().data(),
              GemmLayout::kRowMajor, c.data().data(), m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(0);
  Tensor c({m, n});
  gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
              GemmLayout::kTransposed, c.data().data(), m, k, n);
  return c;
}

}  // namespace ibrar
