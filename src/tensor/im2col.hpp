#pragma once
// Convolution & pooling kernels on NCHW tensors.
//
// conv2d is lowered to GEMM via im2col; col2im is its adjoint. Max/avg pooling
// store argmax indices so autograd can route gradients.

#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar {

struct Conv2dSpec {
  std::int64_t kernel = 3;
  std::int64_t stride = 1;
  std::int64_t pad = 1;
};

/// Output spatial size for one dimension.
std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad);

/// im2col: x (N,C,H,W) -> columns (N*OH*OW, C*K*K).
Tensor im2col(const Tensor& x, const Conv2dSpec& spec);

/// col2im adjoint: columns (N*OH*OW, C*K*K) -> (N,C,H,W) accumulated.
Tensor col2im(const Tensor& cols, const Shape& x_shape, const Conv2dSpec& spec);

/// Forward conv: x (N,C,H,W), w (F,C,K,K), bias (F) optional -> (N,F,OH,OW).
Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor* bias,
              const Conv2dSpec& spec);

struct PoolResult {
  Tensor out;                      ///< (N,C,OH,OW)
  std::vector<std::int64_t> argmax;  ///< flat input index per output element
};

/// 2-D max pooling (kernel=stride window, no padding).
PoolResult maxpool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride);

/// Scatter pooled gradients back through stored argmax indices.
Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& x_shape,
                          const std::vector<std::int64_t>& argmax);

/// Global average pool (N,C,H,W) -> (N,C).
Tensor global_avg_pool(const Tensor& x);

/// Adjoint of global_avg_pool.
Tensor global_avg_pool_backward(const Tensor& grad_out, const Shape& x_shape);

}  // namespace ibrar
