#pragma once
// Fused inference convolution path (eval-only, bit-identical by contract).
//
// The training conv (tensor/im2col.cpp) lowers every call to GEMM by
// materializing a full im2col matrix, multiplying, transposing the
// (spatial, filter) product back to NCHW, and then making three more full
// activation passes for bias, batch norm, and ReLU. That is the right shape
// for autograd (the columns are reused by backward) but it is pure overhead
// for serving, where weights are frozen and nobody asks for gradients.
//
// ConvEvalPlan is the serving-side lowering of one conv(+bias)(+BN)(+skip)
// (+ReLU) block:
//
//  * A-side (weights): the (F, C*K*K) weight matrix is packed ONCE, at plan
//    construction (ModelSnapshot publish time), into the exact MR-row strips
//    gemm_packed's micro-kernel consumes. Every micro-batch on every worker
//    reuses the same panels.
//  * B-side (activations): packed directly from the NCHW input into KC x NR
//    column strips in the per-lane scratch arena (Scratch::kConvPackB) — the
//    im2col gather happens inside the pack, so no (N*OH*OW, C*K*K) columns
//    tensor is ever materialized. Columns are pooled across the whole batch
//    (global column index j = image * OH*OW + spatial), so small feature maps
//    (deep VGG layers have OH*OW = 16) still fill complete NR=16 strips once
//    batch >= 2 — this is where micro-batching starts paying for conv.
//  * Epilogue: the C accumulator block (Scratch::kConvAccC) is scattered to
//    NCHW exactly once, applying bias, the folded frozen-stat batch norm,
//    an optional residual add, and optional ReLU per element in flight —
//    replacing the transpose pass plus three full tensor passes.
//
// Bit-identity contract: every output element is produced by the same
// compiled micro-kernel (tensor/gemm_packed.cpp, gemm_detail) extending the
// same ascending-p fma chain over the same operand values as the reference
// path, and the epilogue replays the reference per-element expressions
// (conv2d's `plane[s] += b`, batch_norm2d_apply's `(x - mu) * is` /
// `g * xh + b`, ag::add's `h + skip`, relu's `x > 0 ? x : 0`) in the same
// order. Logits and taps are therefore memcmp-identical to the layer-by-layer
// eval path at any batch size, lane count, and blocking (tests/
// test_conv_eval.cpp gates this).
//
// The path is eval-only: models take it only when gradient recording is off
// (ag::grad_enabled() == false) and a plan exists; training and the attack
// loops never see it. `IBRAR_EVAL_FUSED=0` is the escape hatch that disables
// plan construction entirely.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/im2col.hpp"
#include "tensor/tensor.hpp"

namespace ibrar {

/// True unless the environment sets IBRAR_EVAL_FUSED=0 (read per call; the
/// serve publish path and tests flip it at runtime).
bool fused_eval_enabled();

/// Frozen-stat batch norm folded for the fused epilogue. Kept as the four
/// per-channel constants batch_norm2d_apply actually uses — NOT a two-term
/// scale/shift, which would associate the arithmetic differently and round
/// differently. inv_std is precomputed with the identical expression
/// (1.0f / sqrt(var + eps)), so folding moves work without moving rounding.
struct FoldedBn {
  Tensor mean;     ///< (C) running mean
  Tensor inv_std;  ///< (C) 1 / sqrt(running_var + eps)
  Tensor gamma;    ///< (C)
  Tensor beta;     ///< (C)

  // A default Tensor is a rank-0 scalar (numel() == 1), so emptiness is a
  // rank check: folded stats are always rank-1 (one constant per channel).
  bool defined() const { return mean.rank() > 0; }
};

/// Fold running stats once. `gamma/beta/running_mean/running_var` are (C).
FoldedBn fold_batch_norm(const Tensor& gamma, const Tensor& beta,
                         const Tensor& running_mean, const Tensor& running_var,
                         float eps);

/// One-pass eval batch norm (+ optional ReLU) on x (N,C,H,W). Replays
/// batch_norm2d_apply's per-element expression on the folded constants, so
/// the result is bit-identical to batch_norm2d_eval (then relu) without the
/// xhat tensor, the autograd node, or the second activation pass. Used by the
/// pre-activation WideResNet fused path, where BN runs before the conv.
Tensor batch_norm_relu_eval(const Tensor& x, const FoldedBn& bn, bool relu);

/// maxpool2d without the argmax vector (eval never routes gradients). Same
/// comparison chain as maxpool2d, so the values are bit-identical.
Tensor maxpool2d_eval(const Tensor& x, std::int64_t kernel,
                      std::int64_t stride);

/// Prepacked fused conv block: conv(+bias)(+BN)(+skip)(+ReLU).
///
/// Construction packs the weights and registers the panel bytes in the
/// process-global `serve.snapshot_bytes` gauge; destruction releases them
/// (so the gauge tracks live prepack memory across model hot-swaps).
class ConvEvalPlan {
 public:
  /// weight (F,C,K,K); bias (F) or nullptr; bn folded stats or a
  /// default-constructed FoldedBn for conv-only layers; relu applies after
  /// bias/BN/skip.
  ConvEvalPlan(const Tensor& weight, const Tensor* bias, const Conv2dSpec& spec,
               FoldedBn bn, bool relu);
  ~ConvEvalPlan();
  ConvEvalPlan(ConvEvalPlan&& other) noexcept;
  ConvEvalPlan& operator=(ConvEvalPlan&& other) noexcept;
  ConvEvalPlan(const ConvEvalPlan&) = delete;
  ConvEvalPlan& operator=(const ConvEvalPlan&) = delete;

  /// x (N,C,H,W) -> (N,F,OH,OW). `skip`, when given, must already have the
  /// output shape; it is added after BN and before ReLU (residual fusion:
  /// matches relu(add(h, skip)) / add(h, skip) of the layer-by-layer path).
  Tensor run(const Tensor& x, const Tensor* skip = nullptr) const;

  std::int64_t in_channels() const { return c_; }
  std::int64_t out_channels() const { return f_; }
  const Conv2dSpec& spec() const { return spec_; }
  bool has_relu() const { return relu_; }
  /// Bytes held by the packed weight panels (what the gauge accounts).
  std::size_t packed_bytes() const { return packed_.size() * sizeof(float); }

 private:
  void account(double sign) const;

  // Row blocking of the (F, CKK) weight matrix: one entry per MC block of
  // filters; `c_off` is the block's first row in the C accumulator scratch
  // (rows are MR-padded per block so the micro-kernel never needs the row
  // edge), `a_off[pb]` its packed panel offset for depth block pb.
  struct IcBlock {
    std::int64_t ic;    ///< first filter row
    std::int64_t mc;    ///< real rows in this block
    std::int64_t mcp;   ///< rows padded up to MR
    std::int64_t c_off; ///< row offset into the C scratch block
    std::vector<std::size_t> a_off;  ///< packed offset per KC depth block
  };

  std::int64_t f_ = 0;    ///< filters
  std::int64_t c_ = 0;    ///< input channels
  std::int64_t ckk_ = 0;  ///< reduction depth C*K*K
  Conv2dSpec spec_;
  std::vector<float> packed_;      ///< weight panels, MR-strip layout
  std::vector<IcBlock> blocks_;
  std::vector<std::int64_t> crow_of_f_;  ///< filter -> C scratch row
  std::int64_t c_rows_ = 0;              ///< total padded scratch rows
  Tensor bias_;  ///< (F) or empty
  FoldedBn bn_;
  bool relu_ = false;
};

}  // namespace ibrar
