#pragma once
// Row-blocked GEMM, parallelized over the runtime thread pool. The models are
// tiny but conv-as-im2col makes matmul the hot loop, so these kernels are
// written for the compiler to auto-vectorize (contiguous inner loops,
// restrict-style locals) and split output rows across lanes with per-row
// arithmetic identical to the serial loop (bit-reproducible results).

#include "tensor/tensor.hpp"

namespace ibrar {

/// C = A(m,k) * B(k,n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(m,k) * B(... ) convenience forms used by backward passes.
Tensor matmul_tn(const Tensor& a, const Tensor& b);  ///< A^T * B, A is (k,m)
Tensor matmul_nt(const Tensor& a, const Tensor& b);  ///< A * B^T, B is (n,k)

/// Raw kernel: c[m,n] += a[m,k] * b[k,n] (row-major, preallocated).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

}  // namespace ibrar
