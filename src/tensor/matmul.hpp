#pragma once
// GEMM entry points, backed by the cache-blocked packed micro-kernel in
// gemm_packed.*. Conv-as-im2col makes matmul the hot loop of every workload
// (training, the attack suite, the HSIC/Gram MI estimators), so all three
// variants lower onto one panel-packed kernel that reuses per-lane scratch
// buffers and splits C row-panels across the pool with per-element arithmetic
// identical to the serial loop (bit-reproducible at any thread count).
//
// No zero-skip shortcuts: IEEE special values (NaN, Inf, signed zero)
// propagate exactly as in the textbook triple loop.

#include "tensor/tensor.hpp"

namespace ibrar {

/// C = A(m,k) * B(k,n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(m,k) * B(... ) convenience forms used by backward passes.
Tensor matmul_tn(const Tensor& a, const Tensor& b);  ///< A^T * B, A is (k,m)
Tensor matmul_nt(const Tensor& a, const Tensor& b);  ///< A * B^T, B is (n,k)

/// C = A * A^T (m, m) — the row Gram matrix behind every pairwise-distance
/// and Gaussian-kernel computation in src/mi. Only the upper-triangle row
/// blocks are computed (each through the packed kernel, into a per-lane
/// scratch-arena tile) and mirrored, so it does ~half the FLOPs of
/// matmul_nt(a, a) while staying bit-identical to it: element (i, j) runs the
/// same ascending-p fma chain either way, and (j, i) multiplies the same
/// pairs in the same order (float multiplication commutes bitwise).
Tensor matmul_nt_sym(const Tensor& a);

/// Raw kernel: c[m,n] += a[m,k] * b[k,n] (row-major, preallocated).
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

}  // namespace ibrar
