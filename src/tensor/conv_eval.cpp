#include "tensor/conv_eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scratch_arena.hpp"
#include "tensor/gemm_packed.hpp"

namespace ibrar {
namespace {

inline std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

/// Implicit-im2col B pack: fill the packed block for depth rows [pc, pc+kc)
/// and global columns [j0, j0+tc) straight from the NCHW input, in the exact
/// NR-column-strip p-major layout gemm_detail::micro_kernel consumes
/// (dst[jr*kc + p*NR + jj] = cols(j0+jr+jj, pc+p)). Global column
/// j = image * OH*OW + (oy*OW + ox); the gathered value is exactly what
/// im2col would have written for that (row, p) — including the zero padding
/// ring — so the micro-kernel sees the same operand values as the reference
/// path without the columns tensor ever existing. Columns past `total_cols`
/// are zero-filled (they land in padded output the epilogue never reads).
void pack_b_cols(const float* x, std::int64_t c, std::int64_t in_h,
                 std::int64_t in_w, const Conv2dSpec& spec, std::int64_t ow,
                 std::int64_t spatial, std::int64_t total_cols, std::int64_t pc,
                 std::int64_t kc, std::int64_t j0, std::int64_t tc, float* bp) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/conv_eval/pack_b");
  obs::ProfileScope prof_scope(prof);
  const std::int64_t k = spec.kernel;
  const std::int64_t plane = in_h * in_w;
  for (std::int64_t jr = 0; jr < tc; jr += kGemmNR) {
    float* dst = bp + jr * kc;
    // Per-column source geometry, hoisted out of the depth walk.
    const float* xbase[kGemmNR];
    std::int64_t iy0[kGemmNR];
    std::int64_t ix0[kGemmNR];
    for (std::int64_t jj = 0; jj < kGemmNR; ++jj) {
      const std::int64_t col = j0 + jr + jj;
      if (col < total_cols) {
        const std::int64_t in_n = col / spatial;
        const std::int64_t s = col % spatial;
        xbase[jj] = x + in_n * c * plane;
        iy0[jj] = (s / ow) * spec.stride - spec.pad;
        ix0[jj] = (s % ow) * spec.stride - spec.pad;
      } else {
        xbase[jj] = nullptr;
      }
    }
    // Walk p = ic*K*K + ky*K + kx with carried counters (im2col's row order).
    std::int64_t ic = pc / (k * k);
    std::int64_t rem = pc % (k * k);
    std::int64_t ky = rem / k;
    std::int64_t kx = rem % k;
    for (std::int64_t p = 0; p < kc; ++p) {
      float* row = dst + p * kGemmNR;
      const std::int64_t plane_off = ic * plane;
      for (std::int64_t jj = 0; jj < kGemmNR; ++jj) {
        if (xbase[jj] == nullptr) {
          row[jj] = 0.0f;
          continue;
        }
        const std::int64_t iy = iy0[jj] + ky;
        const std::int64_t ix = ix0[jj] + kx;
        const bool in_bounds = static_cast<std::uint64_t>(iy) <
                                   static_cast<std::uint64_t>(in_h) &&
                               static_cast<std::uint64_t>(ix) <
                                   static_cast<std::uint64_t>(in_w);
        row[jj] = in_bounds ? xbase[jj][plane_off + iy * in_w + ix] : 0.0f;
      }
      if (++kx == k) {
        kx = 0;
        if (++ky == k) {
          ky = 0;
          ++ic;
        }
      }
    }
  }
}

}  // namespace

bool fused_eval_enabled() {
  const char* env = std::getenv("IBRAR_EVAL_FUSED");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

FoldedBn fold_batch_norm(const Tensor& gamma, const Tensor& beta,
                         const Tensor& running_mean, const Tensor& running_var,
                         float eps) {
  const auto c = running_mean.numel();
  if (gamma.numel() != c || beta.numel() != c || running_var.numel() != c) {
    throw std::invalid_argument("fold_batch_norm: channel count mismatch");
  }
  FoldedBn bn;
  bn.mean = running_mean;
  bn.gamma = gamma;
  bn.beta = beta;
  bn.inv_std = Tensor({c});
  // Identical expression to batch_norm2d_apply's inv_std loop: folding moves
  // the divide/sqrt to publish time without changing a single rounding.
  for (std::int64_t ic = 0; ic < c; ++ic) {
    bn.inv_std[ic] = 1.0f / std::sqrt(running_var[ic] + eps);
  }
  return bn;
}

Tensor batch_norm_relu_eval(const Tensor& x, const FoldedBn& bn, bool relu) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/bn_relu_eval");
  obs::ProfileScope prof_scope(prof);
  if (x.rank() != 4) {
    throw std::invalid_argument("batch_norm_relu_eval: NCHW only");
  }
  const auto n = x.dim(0), c = x.dim(1);
  const std::int64_t spatial = x.dim(2) * x.dim(3);
  if (bn.mean.numel() != c) {
    throw std::invalid_argument("batch_norm_relu_eval: channel mismatch");
  }
  Tensor out(x.shape());
  const float* px = x.data().data();
  float* po = out.data().data();
  const float* pmu = bn.mean.data().data();
  const float* pis = bn.inv_std.data().data();
  const float* pg = bn.gamma.data().data();
  const float* pb = bn.beta.data().data();
  const std::int64_t grain = runtime::grain_for(spatial);
  runtime::parallel_for(0, n * c, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const std::int64_t ic = i % c;
      const std::int64_t off = i * spatial;
      const float mu = pmu[ic], is = pis[ic], g = pg[ic], b = pb[ic];
      for (std::int64_t kk = 0; kk < spatial; ++kk) {
        // batch_norm2d_apply's exact element expression, then relu's.
        const float xh = (px[off + kk] - mu) * is;
        float v = g * xh + b;
        if (relu) v = v > 0.0f ? v : 0.0f;
        po[off + kk] = v;
      }
    }
  });
  return out;
}

Tensor maxpool2d_eval(const Tensor& x, std::int64_t kernel,
                      std::int64_t stride) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/maxpool2d_eval");
  obs::ProfileScope prof_scope(prof);
  if (x.rank() != 4) throw std::invalid_argument("maxpool2d_eval: NCHW only");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto oh = (h - kernel) / stride + 1;
  const auto ow = (w - kernel) / stride + 1;
  Tensor out({n, c, oh, ow});
  const float* px = x.data().data();
  float* po = out.data().data();
  const std::int64_t out_spatial = oh * ow;
  const std::int64_t grain = runtime::grain_for(out_spatial * kernel * kernel);
  runtime::parallel_for(0, n * c, grain, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t plane_idx = p0; plane_idx < p1; ++plane_idx) {
      const float* plane = px + plane_idx * h * w;
      std::int64_t oi = plane_idx * out_spatial;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          // Same comparison chain as maxpool2d, minus the argmax bookkeeping.
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const float v = plane[(oy * stride + ky) * w + ox * stride + kx];
              if (v > best) best = v;
            }
          }
          po[oi++] = best;
        }
      }
    }
  });
  return out;
}

void ConvEvalPlan::account(double sign) const {
  const double bytes = static_cast<double>(packed_.size() * sizeof(float));
  if (bytes != 0.0) {
    static obs::Gauge& gauge = obs::registry().gauge("serve.snapshot_bytes");
    gauge.add(sign * bytes);
  }
}

ConvEvalPlan::ConvEvalPlan(const Tensor& weight, const Tensor* bias,
                           const Conv2dSpec& spec, FoldedBn bn, bool relu)
    : spec_(spec), bn_(std::move(bn)), relu_(relu) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/conv_eval/prepack");
  obs::ProfileScope prof_scope(prof);
  if (weight.rank() != 4) {
    throw std::invalid_argument("ConvEvalPlan: weight must be (F,C,K,K)");
  }
  f_ = weight.dim(0);
  c_ = weight.dim(1);
  ckk_ = weight.numel() / f_;
  if (weight.dim(2) != spec.kernel || weight.dim(3) != spec.kernel) {
    throw std::invalid_argument("ConvEvalPlan: weight/spec kernel mismatch");
  }
  if (bias != nullptr) {
    if (bias->numel() != f_) throw std::invalid_argument("ConvEvalPlan: bias");
    bias_ = *bias;
  }
  if (bn_.defined() && bn_.mean.numel() != f_) {
    throw std::invalid_argument("ConvEvalPlan: BN channel mismatch");
  }

  // Block the (F, CKK) weight matrix exactly like gemm_packed blocks A:
  // MC-row blocks, KC-depth panels, MR-row strips inside each panel.
  std::size_t total = 0;
  crow_of_f_.resize(static_cast<std::size_t>(f_));
  for (std::int64_t ic = 0; ic < f_; ic += kGemmMC) {
    IcBlock b;
    b.ic = ic;
    b.mc = std::min(kGemmMC, f_ - ic);
    b.mcp = round_up(b.mc, kGemmMR);
    b.c_off = c_rows_;
    c_rows_ += b.mcp;
    for (std::int64_t pc = 0; pc < ckk_; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, ckk_ - pc);
      b.a_off.push_back(total);
      total += static_cast<std::size_t>(kc * b.mcp);
    }
    for (std::int64_t r = 0; r < b.mc; ++r) {
      crow_of_f_[static_cast<std::size_t>(ic + r)] = b.c_off + r;
    }
    blocks_.push_back(std::move(b));
  }
  packed_.resize(total);
  const float* wm = weight.data().data();  // (F, CKK) row-major view
  for (const IcBlock& b : blocks_) {
    std::size_t pb = 0;
    for (std::int64_t pc = 0; pc < ckk_; pc += kGemmKC, ++pb) {
      const std::int64_t kc = std::min(kGemmKC, ckk_ - pc);
      gemm_detail::pack_a(wm, ckk_, /*trans=*/false, b.ic, b.mc, pc, kc,
                          packed_.data() + b.a_off[pb]);
    }
  }
  account(+1.0);
}

ConvEvalPlan::~ConvEvalPlan() { account(-1.0); }

ConvEvalPlan::ConvEvalPlan(ConvEvalPlan&& other) noexcept {
  *this = std::move(other);
}

ConvEvalPlan& ConvEvalPlan::operator=(ConvEvalPlan&& other) noexcept {
  if (this != &other) {
    account(-1.0);  // release panels this plan currently owns
    f_ = other.f_;
    c_ = other.c_;
    ckk_ = other.ckk_;
    spec_ = other.spec_;
    packed_ = std::move(other.packed_);
    blocks_ = std::move(other.blocks_);
    crow_of_f_ = std::move(other.crow_of_f_);
    c_rows_ = other.c_rows_;
    bias_ = std::move(other.bias_);
    bn_ = std::move(other.bn_);
    relu_ = other.relu_;
    other.packed_.clear();  // gauge ownership moved with the panels
  }
  return *this;
}

Tensor ConvEvalPlan::run(const Tensor& x, const Tensor* skip) const {
  static obs::ProfileSite& prof = obs::profile_site("tensor/conv_eval/fused");
  obs::ProfileScope prof_scope(prof);
  if (x.rank() != 4) throw std::invalid_argument("ConvEvalPlan::run: NCHW");
  if (x.dim(1) != c_) {
    throw std::invalid_argument("ConvEvalPlan::run: channel mismatch");
  }
  const auto n = x.dim(0), in_h = x.dim(2), in_w = x.dim(3);
  const auto oh = conv_out_dim(in_h, spec_.kernel, spec_.stride, spec_.pad);
  const auto ow = conv_out_dim(in_w, spec_.kernel, spec_.stride, spec_.pad);
  const std::int64_t spatial = oh * ow;
  const std::int64_t total_cols = n * spatial;
  Tensor out({n, f_, oh, ow});
  if (total_cols == 0) return out;
  if (skip != nullptr && skip->shape() != out.shape()) {
    throw std::invalid_argument("ConvEvalPlan::run: skip shape mismatch");
  }

  const float* px = x.data().data();
  const float* psk = skip != nullptr ? skip->data().data() : nullptr;
  float* po = out.data().data();
  // rank check, not numel: a default Tensor is a rank-0 scalar (numel 1).
  const float* pbias = bias_.rank() > 0 ? bias_.data().data() : nullptr;
  const bool has_bn = bn_.defined();
  const float* pmu = has_bn ? bn_.mean.data().data() : nullptr;
  const float* pis = has_bn ? bn_.inv_std.data().data() : nullptr;
  const float* pg = has_bn ? bn_.gamma.data().data() : nullptr;
  const float* pbeta = has_bn ? bn_.beta.data().data() : nullptr;

  // Column tasks: tc_max global columns (pooled across the batch) per unit of
  // work, mirroring gemm_packed's NC panel width. Each task owns its own
  // C accumulator block and B strips, so tasks split across lanes freely;
  // every output element is produced by exactly one task with the same
  // micro-kernel chain regardless of the split.
  const std::int64_t tc_max = kGemmNC;
  const std::int64_t ntasks = (total_cols + tc_max - 1) / tc_max;
  runtime::parallel_for(0, ntasks, 1, [&](std::int64_t t0, std::int64_t t1) {
    runtime::ScratchArena& arena = runtime::lane_arena();
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t j0 = t * tc_max;
      const std::int64_t cols = std::min(tc_max, total_cols - j0);
      const std::int64_t tc = round_up(cols, kGemmNR);
      float* acc = arena.floats(runtime::Scratch::kConvAccC,
                                static_cast<std::size_t>(c_rows_ * tc));
      std::memset(acc, 0, static_cast<std::size_t>(c_rows_ * tc) * sizeof(float));
      float* bp = arena.floats(runtime::Scratch::kConvPackB,
                               static_cast<std::size_t>(kGemmKC * tc));
      std::size_t pb_idx = 0;
      for (std::int64_t pc = 0; pc < ckk_; pc += kGemmKC, ++pb_idx) {
        const std::int64_t kc = std::min(kGemmKC, ckk_ - pc);
        pack_b_cols(px, c_, in_h, in_w, spec_, ow, spatial, total_cols, pc, kc,
                    j0, tc, bp);
        static obs::ProfileSite& kprof =
            obs::profile_site("tensor/conv_eval/kernel");
        obs::ProfileScope kscope(kprof);
        for (const IcBlock& b : blocks_) {
          const float* ap = packed_.data() + b.a_off[pb_idx];
          for (std::int64_t jr = 0; jr < tc; jr += kGemmNR) {
            const float* bstrip = bp + jr * kc;
            for (std::int64_t ir = 0; ir < b.mcp; ir += kGemmMR) {
              // Rows are MR-padded and columns NR-padded in the scratch
              // block, so the full-size kernel always applies.
              gemm_detail::micro_kernel(kc, ap + ir * kc, bstrip,
                                        acc + (b.c_off + ir) * tc + jr, tc);
            }
          }
        }
      }
      // Fused epilogue: single scatter to NCHW, applying the reference
      // per-element expressions in reference order (bias -> BN -> skip ->
      // ReLU). The padded accumulator rows/columns are simply never read.
      for (std::int64_t f = 0; f < f_; ++f) {
        const float* crow = acc + crow_of_f_[static_cast<std::size_t>(f)] * tc;
        const float bf = pbias != nullptr ? pbias[f] : 0.0f;
        const float mu = has_bn ? pmu[f] : 0.0f;
        const float is = has_bn ? pis[f] : 0.0f;
        const float g = has_bn ? pg[f] : 0.0f;
        const float bb = has_bn ? pbeta[f] : 0.0f;
        std::int64_t jj = 0;
        while (jj < cols) {
          const std::int64_t j = j0 + jj;
          const std::int64_t in_n = j / spatial;
          const std::int64_t s = j % spatial;
          const std::int64_t run = std::min(cols - jj, spatial - s);
          const std::int64_t base = (in_n * f_ + f) * spatial + s;
          for (std::int64_t r = 0; r < run; ++r) {
            float v = crow[jj + r];
            if (pbias != nullptr) v += bf;       // conv2d's bias pass
            if (has_bn) {
              const float xh = (v - mu) * is;    // batch_norm2d_apply
              v = g * xh + bb;
            }
            if (psk != nullptr) v = v + psk[base + r];  // ag::add(h, skip)
            if (relu_) v = v > 0.0f ? v : 0.0f;  // ag::relu
            po[base + r] = v;
          }
          jj += run;
        }
      }
    }
  });
  return out;
}

}  // namespace ibrar
