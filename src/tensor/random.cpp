#include "tensor/random.hpp"

namespace ibrar {

Tensor randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.normal(mean, stddev);
  return t;
}

Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.uniform(lo, hi);
  return t;
}

Tensor rand_sign(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& x : t.vec()) x = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  return t;
}

}  // namespace ibrar
