#pragma once
// Cache-blocked, panel-packed SGEMM micro-kernel (BLIS-style).
//
// The driver tiles C into MC x NC macro-blocks, packs the corresponding
// A (MC x KC) and B (KC x NC) panels into contiguous, SIMD-friendly strips in
// the per-lane scratch arena, and walks the block with a register-tiled
// MR x NR inner kernel. Both operands can be consumed transposed, which is
// how matmul_tn / matmul_nt reuse the same kernel without materializing the
// transpose.
//
// Determinism and exactness contract:
//  * The accumulation for every C element is the plain ascending-p chain
//    c = fma(a[i,p], b[p,j], c) — the micro-kernel loads the C tile, extends
//    the chain across KC blocks in ascending order, and stores it back. The
//    result is therefore bit-identical to the textbook ikj triple loop
//    (gemm_naive below) for ANY m, k, n, and to itself at any blocking.
//  * Parallelism splits C row-panels across pool lanes; each element is
//    produced by exactly one lane with the same instruction sequence as the
//    serial loop, so results are bit-identical at any thread count (the PR-1
//    runtime guarantee).
//  * There is deliberately no zero-skip shortcut: 0 * NaN and 0 * Inf must
//    propagate NaN and -0/+0 must follow IEEE addition, exactly as the naive
//    chain does (see tests/test_gemm.cpp).

#include <cstdint>

namespace ibrar {

/// How a raw operand buffer is to be read.
enum class GemmLayout {
  kRowMajor,    ///< element (r, c) at buf[r * ld + c]
  kTransposed,  ///< element (r, c) at buf[c * ld + r] (stored transposed)
};

/// Register tile: MR rows x NR columns of C per inner-kernel invocation.
inline constexpr std::int64_t kGemmMR = 4;
inline constexpr std::int64_t kGemmNR = 16;
/// Cache blocking: A panels are MC x KC (~L2), B strips KC x NR (~L1),
/// B panels KC x NC (~L3).
inline constexpr std::int64_t kGemmMC = 128;
inline constexpr std::int64_t kGemmKC = 256;
inline constexpr std::int64_t kGemmNC = 512;

/// Below this m*k*n volume the packing overhead outweighs the blocking win
/// and the driver falls back to the (bit-identical) naive loop.
inline constexpr std::int64_t kGemmSmallVolume = 32 * 32 * 32;

/// C(m,n) += op(A)(m,k) * op(B)(k,n), C row-major with leading dimension n.
/// op(X) is X read through its GemmLayout; leading dimensions are implied
/// (A: k row-major / m transposed; B: n row-major / k transposed).
void gemm_packed(const float* a, GemmLayout la, const float* b, GemmLayout lb,
                 float* c, std::int64_t m, std::int64_t k, std::int64_t n);

/// Reference ikj triple loop with the identical accumulation chain (no
/// zero-skip, no blocking). Serial; exposed for tests and the A/B bench.
void gemm_naive(const float* a, GemmLayout la, const float* b, GemmLayout lb,
                float* c, std::int64_t m, std::int64_t k, std::int64_t n);

/// Packing and register-tile entry points for drivers that fuse their own
/// epilogue into the C writeback (conv_eval). These are the same compiled
/// routines gemm_packed itself runs, so a caller that feeds them panels with
/// the same operand values in the same ascending-p order gets bit-identical
/// C elements — the fusion freedom is in the loop structure around the
/// kernel, never in the per-element rounding chain.
namespace gemm_detail {

/// A-panel pack: rows [ic, ic+mc) x depth [pc, pc+kc) of op(A) into MR-row
/// strips, p-major within a strip (strip s holds kc * MR floats; element
/// (p, r) of strip s is A(ic + s*MR + r, pc + p)). Rows past mc zero-filled.
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t ic,
            std::int64_t mc, std::int64_t pc, std::int64_t kc, float* ap);

/// MR x NR register tile: extend each C element's ascending-p fma chain by
/// kc steps from packed strips ap (kc x MR) and bp (kc x NR). C is read once
/// before and stored once after the loop (leading dimension ldc).
void micro_kernel(std::int64_t kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc);

/// Edge-tile wrapper: same kernel on a stack tile, copying the valid mr x nr
/// region in and out (copies don't round).
void micro_kernel_edge(std::int64_t kc, const float* ap, const float* bp,
                       float* c, std::int64_t ldc, std::int64_t mr,
                       std::int64_t nr);

}  // namespace gemm_detail

}  // namespace ibrar
