#pragma once
// Reductions and row-wise normalizations used throughout the stack.

#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar {

/// Sum over all elements into a scalar tensor.
Tensor sum(const Tensor& a);

/// Mean over all elements into a scalar tensor.
Tensor mean(const Tensor& a);

/// Sum along `axis`, keeping or dropping that dimension.
Tensor sum_axis(const Tensor& a, std::int64_t axis, bool keepdim = false);

/// Mean along `axis`.
Tensor mean_axis(const Tensor& a, std::int64_t axis, bool keepdim = false);

/// Row-wise max of a 2-D tensor -> (rows).
Tensor rowmax(const Tensor& a);

/// Row-wise argmax of a 2-D tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& a);

/// Row-wise softmax of a 2-D tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& a);

/// Row-wise log-softmax of a 2-D tensor.
Tensor log_softmax_rows(const Tensor& a);

/// Per-row squared L2 norm -> (rows, 1).
Tensor row_sq_norm(const Tensor& a);

/// Pairwise squared Euclidean distances between rows: (m, m).
Tensor pairwise_sq_dists(const Tensor& a);

}  // namespace ibrar
