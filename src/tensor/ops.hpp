#pragma once
// Tensor kernels: broadcast elementwise arithmetic, unary maps, shape
// utilities, and the gradient reduction used to undo broadcasting.
//
// These are the non-differentiable building blocks; src/autograd wraps them
// with backward rules.

#include <functional>

#include "tensor/tensor.hpp"

namespace ibrar {

// ---- broadcast binary arithmetic -------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);

/// Generic broadcast binary op (used by the named ops above and by tests).
Tensor binary_op(const Tensor& a, const Tensor& b,
                 const std::function<float(float, float)>& f);

// ---- scalar variants --------------------------------------------------------

Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

// ---- unary maps -------------------------------------------------------------

Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);          ///< natural log; log(0) clamps to -87.
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sign(const Tensor& a);         ///< -1/0/+1 per element.
Tensor relu(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor square(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);
Tensor pow_scalar(const Tensor& a, float p);

/// Generic unary map.
Tensor unary_op(const Tensor& a, const std::function<float(float)>& f);

// ---- comparisons (result is 0/1 float mask) ---------------------------------

Tensor greater(const Tensor& a, const Tensor& b);
Tensor equal_mask(const Tensor& a, const Tensor& b);

// ---- shape / assembly -------------------------------------------------------

/// 2-D transpose.
Tensor transpose2d(const Tensor& a);

/// Concatenate along axis 0 (all trailing dims must match).
Tensor concat_rows(const std::vector<Tensor>& parts);

/// Select rows of a 2-D (or N-d, axis 0) tensor by index.
Tensor take_rows(const Tensor& a, const std::vector<std::int64_t>& idx);

/// Scatter `src` rows into `dst` at axis-0 positions `idx` (the inverse of
/// take_rows): dst[idx[r]] = src[r]. Indices must be unique — duplicate
/// targets would race across the row-parallel copies. Trailing dims of `dst`
/// and `src` must match.
void put_rows(Tensor& dst, const std::vector<std::int64_t>& idx,
              const Tensor& src);

/// One-hot encode integer labels into (n, num_classes).
Tensor one_hot(const std::vector<std::int64_t>& labels, std::int64_t num_classes);

/// Broadcast `a` to `target` shape explicitly (copying).
Tensor broadcast_to(const Tensor& a, const Shape& target);

/// Sum-reduce `g` down to `target` shape — the adjoint of broadcasting.
Tensor reduce_to_shape(const Tensor& g, const Shape& target);

// ---- scalar folds ------------------------------------------------------------

float sum_all(const Tensor& a);
float mean_all(const Tensor& a);
float max_all(const Tensor& a);
float min_all(const Tensor& a);
float dot(const Tensor& a, const Tensor& b);
float l2_norm(const Tensor& a);
float linf_norm(const Tensor& a);

}  // namespace ibrar
