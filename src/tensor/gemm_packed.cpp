#include "tensor/gemm_packed.hpp"

#include <algorithm>
#include <cstring>

#include "obs/profile.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scratch_arena.hpp"

namespace ibrar {
namespace {

inline std::int64_t round_up(std::int64_t v, std::int64_t to) {
  return (v + to - 1) / to * to;
}

}  // namespace

// Definitions live here (not the header) so every caller — gemm_packed's own
// driver and conv_eval's fused driver — runs the exact same compiled code
// under the same per-file optimization flags; bit-identity then follows from
// operand values and ascending-p order alone.
namespace gemm_detail {

/// A-panel pack: rows [ic, ic+mc) x depth [pc, pc+kc) into MR-row strips,
/// p-major within a strip (strip s holds kc * MR floats; element (p, r) of
/// strip s is A(ic + s*MR + r, pc + p)). Rows past mc are zero-filled so the
/// micro-kernel never branches on the row edge.
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t ic,
            std::int64_t mc, std::int64_t pc, std::int64_t kc, float* ap) {
  for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
    const std::int64_t mr = std::min(kGemmMR, mc - ir);
    float* dst = ap + ir * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < kGemmMR; ++r) {
        const std::int64_t i = ic + ir + r;
        const std::int64_t pp = pc + p;
        dst[p * kGemmMR + r] =
            r < mr ? (trans ? a[pp * lda + i] : a[i * lda + pp]) : 0.0f;
      }
    }
  }
}

/// B-panel pack: depth [pc, pc+kc) x cols [jc, jc+nc) into NR-column strips,
/// p-major within a strip. Columns past nc are zero-filled.
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t pc,
            std::int64_t kc, std::int64_t jc, std::int64_t nc, float* bp) {
  for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
    const std::int64_t nr = std::min(kGemmNR, nc - jr);
    float* dst = bp + jr * kc;
    for (std::int64_t p = 0; p < kc; ++p) {
      const std::int64_t pp = pc + p;
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        const std::int64_t col = jc + jr + j;
        dst[p * kGemmNR + j] =
            j < nr ? (trans ? b[col * ldb + pp] : b[pp * ldb + col]) : 0.0f;
      }
    }
  }
}

/// One NR-wide SIMD row of the register tile. GCC/Clang lower arithmetic on
/// this type to packed fma of whatever width the target has (one zmm, two
/// ymm, four xmm...). Per lane each operation is the same scalar fma the
/// naive chain performs, so vectorization does not change any element's
/// rounding sequence.
typedef float VecNR __attribute__((vector_size(sizeof(float) * kGemmNR)));

/// MR x NR register-tiled kernel: extend the per-element fma chain of the
/// C tile at `c` (leading dimension ldc) by kc steps from packed strips
/// ap (kc x MR) and bp (kc x NR). The accumulators are named so they stay in
/// registers; C is read once before and written once after the kc loop, so
/// the rounding sequence per element is exactly the naive ascending-p chain.
/// Loads/stores go through memcpy in-line (VecNR never crosses a function
/// boundary: passing a 64-byte vector by value is an ABI warning on targets
/// without 512-bit registers).
void micro_kernel(std::int64_t kc, const float* ap, const float* bp, float* c,
                  std::int64_t ldc) {
  static_assert(kGemmMR == 4, "micro_kernel is written for MR == 4");
  VecNR acc0, acc1, acc2, acc3;
  std::memcpy(&acc0, c, sizeof acc0);
  std::memcpy(&acc1, c + ldc, sizeof acc1);
  std::memcpy(&acc2, c + 2 * ldc, sizeof acc2);
  std::memcpy(&acc3, c + 3 * ldc, sizeof acc3);
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kGemmMR;
    VecNR brow;
    std::memcpy(&brow, bp + p * kGemmNR, sizeof brow);
    acc0 += arow[0] * brow;
    acc1 += arow[1] * brow;
    acc2 += arow[2] * brow;
    acc3 += arow[3] * brow;
  }
  std::memcpy(c, &acc0, sizeof acc0);
  std::memcpy(c + ldc, &acc1, sizeof acc1);
  std::memcpy(c + 2 * ldc, &acc2, sizeof acc2);
  std::memcpy(c + 3 * ldc, &acc3, sizeof acc3);
}

/// Edge-tile wrapper: run the full-size kernel on a stack tile and copy the
/// valid mr x nr region in and out. The copies don't round, so edge elements
/// see the same chain as interior ones.
void micro_kernel_edge(std::int64_t kc, const float* ap, const float* bp,
                       float* c, std::int64_t ldc, std::int64_t mr,
                       std::int64_t nr) {
  float tile[kGemmMR * kGemmNR] = {};
  for (std::int64_t r = 0; r < mr; ++r)
    for (std::int64_t j = 0; j < nr; ++j)
      tile[r * kGemmNR + j] = c[r * ldc + j];
  micro_kernel(kc, ap, bp, tile, kGemmNR);
  for (std::int64_t r = 0; r < mr; ++r)
    for (std::int64_t j = 0; j < nr; ++j)
      c[r * ldc + j] = tile[r * kGemmNR + j];
}

}  // namespace gemm_detail

using gemm_detail::micro_kernel;
using gemm_detail::micro_kernel_edge;
using gemm_detail::pack_a;
using gemm_detail::pack_b;

void gemm_naive(const float* a, GemmLayout la, const float* b, GemmLayout lb,
                float* c, std::int64_t m, std::int64_t k, std::int64_t n) {
  const std::int64_t lda = la == GemmLayout::kRowMajor ? k : m;
  const std::int64_t ldb = lb == GemmLayout::kRowMajor ? n : k;
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = la == GemmLayout::kRowMajor ? a[i * lda + p] : a[p * lda + i];
      if (lb == GemmLayout::kRowMajor) {
        const float* bp = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      } else {
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * b[j * ldb + p];
      }
    }
  }
}

void gemm_packed(const float* a, GemmLayout la, const float* b, GemmLayout lb,
                 float* c, std::int64_t m, std::int64_t k, std::int64_t n) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/gemm_packed");
  obs::ProfileScope prof_scope(prof);
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (m * k * n < kGemmSmallVolume) {
    // Packing overhead dominates down here; the naive chain is bit-identical
    // so the dispatch is numerically unobservable.
    gemm_naive(a, la, b, lb, c, m, k, n);
    return;
  }
  const std::int64_t lda = la == GemmLayout::kRowMajor ? k : m;
  const std::int64_t ldb = lb == GemmLayout::kRowMajor ? n : k;
  const bool ta = la == GemmLayout::kTransposed;
  const bool tb = lb == GemmLayout::kTransposed;

  // Pack ALL of B once, up front, into the caller's arena: panels laid out
  // jc-major then pc, so the loop nest below indexes them directly. Workers
  // read the shared packed B (packing copies values without rounding, so a
  // shared pack is exactly as bit-deterministic as a per-lane one) — with T
  // lanes this does 1x the packing traffic instead of Tx, which matters for
  // short-m GEMMs like the conv weight-gradient matmul_tn. Total size is
  // n (NR-padded per jc block) x k floats — the same order as B itself.
  const std::int64_t n_padded = round_up(n % kGemmNC == 0 ? 0 : n % kGemmNC,
                                         kGemmNR) +
                                (n / kGemmNC) * kGemmNC;
  runtime::ScratchArena& caller_arena = runtime::lane_arena();
  float* bpacked =
      caller_arena.floats(runtime::Scratch::kGemmPackB,
                          static_cast<std::size_t>(n_padded * k));
  for (std::int64_t jc = 0, jbase = 0; jc < n; jc += kGemmNC) {
    const std::int64_t nc = std::min(kGemmNC, n - jc);
    const std::int64_t ncp = round_up(nc, kGemmNR);
    for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
      const std::int64_t kc = std::min(kGemmKC, k - pc);
      pack_b(b, ldb, tb, pc, kc, jc, nc, bpacked + jbase * k + ncp * pc);
    }
    jbase += ncp;
  }

  // Split C row-panels across lanes; each lane packs only its own A panels.
  // The per-element instruction sequence never depends on the split.
  runtime::parallel_for(
      0, m, runtime::grain_for(2 * k * n), [&](std::int64_t i0, std::int64_t i1) {
        runtime::ScratchArena& arena = runtime::lane_arena();
        for (std::int64_t jc = 0, jbase = 0; jc < n; jc += kGemmNC) {
          const std::int64_t nc = std::min(kGemmNC, n - jc);
          const std::int64_t ncp = round_up(nc, kGemmNR);
          for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
            const std::int64_t kc = std::min(kGemmKC, k - pc);
            const float* bpanel = bpacked + jbase * k + ncp * pc;
            for (std::int64_t ic = i0; ic < i1; ic += kGemmMC) {
              const std::int64_t mc = std::min(kGemmMC, i1 - ic);
              const std::int64_t mcp = round_up(mc, kGemmMR);
              float* apanel =
                  arena.floats(runtime::Scratch::kGemmPackA,
                               static_cast<std::size_t>(kc * mcp));
              pack_a(a, lda, ta, ic, mc, pc, kc, apanel);
              for (std::int64_t jr = 0; jr < nc; jr += kGemmNR) {
                const std::int64_t nr = std::min(kGemmNR, nc - jr);
                const float* bstrip = bpanel + jr * kc;
                for (std::int64_t ir = 0; ir < mc; ir += kGemmMR) {
                  const std::int64_t mr = std::min(kGemmMR, mc - ir);
                  const float* astrip = apanel + ir * kc;
                  float* ctile = c + (ic + ir) * n + jc + jr;
                  if (mr == kGemmMR && nr == kGemmNR) {
                    micro_kernel(kc, astrip, bstrip, ctile, n);
                  } else {
                    micro_kernel_edge(kc, astrip, bstrip, ctile, n, mr, nr);
                  }
                }
              }
            }
          }
          jbase += ncp;
        }
      });
}

}  // namespace ibrar
