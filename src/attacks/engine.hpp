#pragma once
// Composable gradient-attack engine.
//
// Every white-box attack in this library is an init -> step -> project ->
// track-best loop; this header decomposes that loop into orthogonal
// primitives so each attack is a ~10-line composition instead of a private
// copy of the machinery:
//
//   init      : where the trajectory starts (clean point / uniform-in-ball /
//               Gaussian, as TRADES uses)
//   loss      : what the inner maximization climbs (CE / logit margin /
//               KL against the clean predictive distribution / any custom
//               LossBuilder, e.g. the adaptive IB objective)
//   step      : how the gradient becomes a move (plain sign / momentum sign /
//               Nesterov look-ahead sign)
//   project   : Linf eps-ball intersected with the [clip_lo, clip_hi] box
//   tracking  : which iterate is returned (last / best per restart / best
//               per step), with restart scheduling on top
//
// The engine also implements the active-set batch scheduler: with
// AttackConfig::active_set on, examples that are already misclassified are
// dropped from the working batch after each step via row compaction
// (take_rows), so the forward/backward GEMM cost tracks the shrinking set of
// survivors; results are scattered back on exit. Compaction is exact for
// per-example-independent compositions (eval-mode forwards are row-wise
// independent, and sign steps erase the 1/batch loss scale), so survivor
// trajectories are bit-identical to the non-compacted run. Batch-coupled
// compositions (the MI/NI batch-mean L1 normalizer, MI-estimator losses)
// reject active_set with an explanatory throw.
//
// Determinism: init noise is always drawn for the FULL batch shape, even when
// the active set has shrunk, so every example's noise depends only on
// (seed, restart, batch position) and the RNG stream is identical with the
// active set on or off. See README "Attack engine" for how this interacts
// with early stopping.

#include <functional>

#include "attacks/attack.hpp"

namespace ibrar::attacks::engine {

// ---- primitive vocabulary ---------------------------------------------------

enum class Init {
  kNone,         ///< start at the clean point
  kUniformBall,  ///< x + U(-eps, eps), honored only when cfg.random_start
  kGaussian,     ///< x + N(0, sigma) — TRADES' inner-loop init
};

enum class Step {
  kSign,          ///< adv += alpha * sign(g)
  kMomentumSign,  ///< g_acc = decay*g_acc + g; adv += alpha * sign(g_acc)
  kNesterovSign,  ///< gradient at the look-ahead point adv + alpha*decay*g_acc
};

/// Builds the differentiable loss the engine MAXIMIZES. `input` is the leaf
/// holding the current iterate; `y` the (possibly compacted) labels; `rows`
/// the original batch positions of the working rows (identity when the active
/// set is off — lets closures that captured full-batch state, like the KL
/// target, index the right rows). Must set *logits_out to the logits Var so
/// the engine can reuse the forward for margins and active-set decisions.
using LossBuilder = std::function<ag::Var(
    models::TapClassifier& model, const ag::Var& input,
    const std::vector<std::int64_t>& y, const std::vector<std::int64_t>& rows,
    ag::Var* logits_out)>;

/// Mean cross-entropy against the true labels (FGSM/PGD/MI/NI family).
LossBuilder ce_loss();

/// Negative mean logit margin z_y - max_{j != y} z_j (margin-descent variant).
LossBuilder margin_loss();

/// KL(p_clean || p(x')) with p_clean treated as a constant — TRADES' inner
/// maximization. `p_clean` holds FULL-batch clean probabilities; rows are
/// gathered per call so active-set compaction stays consistent.
LossBuilder kl_vs_clean_loss(Tensor p_clean);

/// One gradient-attack composition. AttackConfig supplies the budget (eps,
/// alpha, steps, restarts, clips, seed) plus the active_set / track_best
/// scheduling knobs; Spec supplies the primitives.
struct Spec {
  Init init = Init::kNone;
  float init_sigma = 1e-3f;  ///< for Init::kGaussian
  LossBuilder loss;          ///< empty = ce_loss()
  bool batch_coupled_loss = false;  ///< true forbids active_set (MI losses)
  Step step = Step::kSign;
  float decay = 1.0f;        ///< momentum / Nesterov mu
  bool l1_normalize = false; ///< batch-mean-L1 gradient normalization (MI/NI)
  float step_size = -1.0f;   ///< per-step size; < 0 means cfg.alpha
};

/// Run the composed attack. `rng` is the caller's stream (persisted across
/// batches by the Attack base class / TRADES objective) so fixed seeds
/// reproduce the exact seed-implementation draws.
Tensor run(models::TapClassifier& model, const Tensor& x,
           const std::vector<std::int64_t>& y, const AttackConfig& cfg,
           const Spec& spec, Rng& rng);

// ---- shared sub-primitives for bespoke attacks (CW / Square / FAB) ---------

/// Per-row index of the highest logit excluding the true class.
std::vector<std::int64_t> best_wrong_class(const Tensor& logits,
                                           const std::vector<std::int64_t>& y);

/// Elements of `v` at positions `idx`.
std::vector<std::int64_t> subset(const std::vector<std::int64_t>& v,
                                 const std::vector<std::int64_t>& idx);

/// Per-example best-iterate tracking over a full batch: keeps, per row, the
/// candidate with the lowest metric seen so far (margin for PGD restarts, L2
/// for CW, anything caller-defined). Rows never improved keep the init
/// tensor's content until fill_unimproved() overwrites them.
class BestTracker {
 public:
  /// Best starts as a copy of `init` with every metric at +infinity.
  explicit BestTracker(const Tensor& init);

  /// Best starts as `init` with caller-provided metrics (Square's stripes).
  BestTracker(Tensor init, std::vector<float> metric);

  /// cand row i (of rows.size() compacted rows) replaces best row rows[i]
  /// when metric[i] improves strictly. Row copies fan out on the thread pool.
  void update_rows(const std::vector<std::int64_t>& rows, const Tensor& cand,
                   const std::vector<float>& metric);

  /// Unconditionally store cand row `cand_row` as best row `row`.
  void overwrite_row(std::int64_t row, const Tensor& cand,
                     std::int64_t cand_row, float metric);

  /// Unconditionally store every cand row at its original position (the
  /// last-iterate scatter on active-set exit). Metrics are left untouched.
  void overwrite_rows(const std::vector<std::int64_t>& rows, const Tensor& cand);

  /// Rows still at +infinity metric take cand's row at the same compacted
  /// position (CW/FAB "never fooled -> final iterate" semantics).
  void fill_unimproved(const std::vector<std::int64_t>& rows, const Tensor& cand);

  bool improved(std::int64_t row) const;
  const std::vector<float>& metric() const { return metric_; }
  const Tensor& best() const { return best_; }
  Tensor release() { return std::move(best_); }

 private:
  Tensor best_;
  std::vector<float> metric_;
  std::int64_t row_size_ = 0;
};

/// Index bookkeeping for the active-set batch scheduler: the original batch
/// positions still being attacked. Attacks compact their working tensors to
/// rows() and shrink via retain().
class ActiveSet {
 public:
  explicit ActiveSet(std::int64_t n);

  const std::vector<std::int64_t>& rows() const { return rows_; }
  std::int64_t size() const { return static_cast<std::int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  /// Keep rows whose flag is true (`keep` is indexed by current compacted
  /// position). Returns the LOCAL positions kept, for compacting working
  /// tensors with take_rows; when its size equals the pre-call size nothing
  /// was dropped and compaction can be skipped.
  std::vector<std::int64_t> retain(const std::vector<char>& keep);

 private:
  std::vector<std::int64_t> rows_;
};

}  // namespace ibrar::attacks::engine
