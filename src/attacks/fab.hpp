#pragma once
// Simplified Fast Adaptive Boundary attack (Croce & Hein 2020).
//
// Per step: linearize the decision boundary toward the most competitive wrong
// class, take the Linf-minimal step onto the (slightly overshot) hyperplane,
// bias back toward the original point when already adversarial, and project
// to the eps-ball. The full FAB solves a box-constrained projection QP; the
// closed-form Linf hyperplane step used here preserves the geometry that the
// evaluation exercises (minimal-norm boundary crossing inside the ball) — see
// DESIGN.md substitutions.

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class FAB : public Attack {
 public:
  explicit FAB(AttackConfig cfg, float overshoot = 1.05f, float backward_bias = 0.7f)
      : Attack(cfg), overshoot_(overshoot), backward_bias_(backward_bias) {}
  std::string name() const override { return "FAB" + std::to_string(cfg_.steps); }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

 private:
  float overshoot_;
  float backward_bias_;
};

}  // namespace ibrar::attacks
