#include "attacks/cw.hpp"

#include <cmath>
#include <limits>

#include "attacks/engine.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {

Tensor CW::perturb(models::TapClassifier& model, const Tensor& x,
                   const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  const auto n = x.dim(0);
  const std::int64_t img = x.numel() / n;

  // w leaf with x = 0.5*(tanh(w)+1); shrink toward the interior so atanh is
  // finite at the boundary values 0 and 1.
  Tensor w0(x.shape());
  runtime::parallel_for(0, x.numel(), runtime::kElementwiseGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float xi = std::min(std::max(x[i], 0.0f), 1.0f);
      w0[i] = std::atanh((2.0f * xi - 1.0f) * 0.999999f);
    }
  });
  ag::Var w = ag::Var::param(w0);

  // Adam state.
  Tensor m_t(x.shape());
  Tensor v_t(x.shape());
  const float b1 = 0.9f, b2 = 0.999f, eps_adam = 1e-8f;

  // Engine primitives: per-example best tracking (metric = squared L2 of
  // successful iterates) and, when cfg_.active_set is on, row compaction of
  // the optimization state once an example has been fooled. The CW loss is a
  // per-example sum, so surviving trajectories are unchanged by compaction;
  // retired examples just stop shrinking their L2 (accuracy is unaffected).
  engine::BestTracker tracker(x);
  engine::ActiveSet active(n);
  Tensor xw = x;
  std::vector<std::int64_t> yw = y;

  for (std::int64_t step = 0; step < cfg_.steps && !active.empty(); ++step) {
    w.zero_grad();
    ag::Var adv = ag::mul_scalar(ag::add_scalar(ag::tanh(w), 1.0f), 0.5f);
    ag::Var logits = model.forward(adv);

    // f6 margin: max(Z_y - max_{j != y} Z_j, -kappa).
    const auto wrong = engine::best_wrong_class(logits.value(), yw);
    ag::Var real = ag::gather_cols(logits, yw);
    ag::Var other = ag::gather_cols(logits, wrong);
    ag::Var margin = ag::relu(ag::add_scalar(ag::sub(real, other), kappa_));

    ag::Var dist = ag::sum(ag::square(ag::sub(adv, ag::Var::constant(xw))));
    ag::Var loss = ag::add(dist, ag::mul_scalar(ag::sum(margin), c_));
    loss.backward();

    // Track best (lowest-L2 successful) adversarial example per sample. The
    // per-example L2 distances split across the pool; unfooled rows keep an
    // infinite metric so they never displace a recorded success.
    const Tensor adv_now = adv.value();
    const auto pred = argmax_rows(logits.value());
    const auto k = active.size();
    std::vector<float> metric(static_cast<std::size_t>(k),
                              std::numeric_limits<float>::infinity());
    runtime::parallel_for(
        0, k, runtime::grain_for(img),
        [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const auto u = static_cast<std::size_t>(i);
        if (pred[u] == yw[u]) continue;
        double l2 = 0.0;
        for (std::int64_t c = 0; c < img; ++c) {
          const double d = adv_now[i * img + c] - xw[i * img + c];
          l2 += d * d;
        }
        metric[u] = static_cast<float>(l2);
      }
    });
    tracker.update_rows(active.rows(), adv_now, metric);

    // Adam update on w.
    const Tensor& g = w.grad();
    const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step + 1));
    const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step + 1));
    runtime::parallel_for(0, w.numel(), runtime::kElementwiseGrain,
                          [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        m_t[i] = b1 * m_t[i] + (1 - b1) * g[i];
        v_t[i] = b2 * v_t[i] + (1 - b2) * g[i] * g[i];
        const float mhat = m_t[i] / bc1;
        const float vhat = v_t[i] / bc2;
        w.mutable_value()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_adam);
      }
    });

    if (cfg_.active_set) {
      // Retire fooled examples: their best iterate is recorded, so the
      // remaining Adam steps only need to run on the survivors.
      std::vector<char> keep(static_cast<std::size_t>(k));
      bool any_drop = false;
      for (std::int64_t i = 0; i < k; ++i) {
        const bool fooled =
            tracker.improved(active.rows()[static_cast<std::size_t>(i)]);
        keep[static_cast<std::size_t>(i)] = !fooled;
        any_drop = any_drop || fooled;
      }
      if (any_drop) {
        const auto kept = active.retain(keep);
        if (active.empty()) break;
        xw = take_rows(xw, kept);
        yw = engine::subset(yw, kept);
        m_t = take_rows(m_t, kept);
        v_t = take_rows(v_t, kept);
        w = ag::Var::param(take_rows(w.value(), kept));
      }
    }
  }

  // Samples never fooled keep their final iterate (standard CW behaviour).
  if (!active.empty()) {
    ag::NoGradGuard ng;
    const Tensor final_adv =
        ibrar::mul_scalar(ibrar::add_scalar(ibrar::tanh(w.value()), 1.0f), 0.5f);
    tracker.fill_unimproved(active.rows(), final_adv);
  }
  return tracker.release();
}

}  // namespace ibrar::attacks
