#include "attacks/cw.hpp"

#include <cmath>
#include <limits>

#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {
namespace {

/// Per-row index of the highest logit excluding the true class.
std::vector<std::int64_t> best_wrong_class(const Tensor& logits,
                                           const std::vector<std::int64_t>& y) {
  const auto m = logits.dim(0), c = logits.dim(1);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    float best = -std::numeric_limits<float>::infinity();
    std::int64_t bj = y[static_cast<std::size_t>(i)] == 0 ? 1 : 0;
    for (std::int64_t j = 0; j < c; ++j) {
      if (j == y[static_cast<std::size_t>(i)]) continue;
      if (logits.at(i, j) > best) {
        best = logits.at(i, j);
        bj = j;
      }
    }
    idx[static_cast<std::size_t>(i)] = bj;
  }
  return idx;
}

}  // namespace

Tensor CW::perturb(models::TapClassifier& model, const Tensor& x,
                   const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  const auto n = x.dim(0);
  const std::int64_t img = x.numel() / n;

  // w leaf with x = 0.5*(tanh(w)+1); shrink toward the interior so atanh is
  // finite at the boundary values 0 and 1.
  Tensor w0(x.shape());
  runtime::parallel_for(0, x.numel(), runtime::kElementwiseGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float xi = std::min(std::max(x[i], 0.0f), 1.0f);
      w0[i] = std::atanh((2.0f * xi - 1.0f) * 0.999999f);
    }
  });
  ag::Var w = ag::Var::param(w0);

  // Adam state.
  Tensor m_t(x.shape());
  Tensor v_t(x.shape());
  const float b1 = 0.9f, b2 = 0.999f, eps_adam = 1e-8f;

  Tensor best_adv = x;
  std::vector<float> best_l2(static_cast<std::size_t>(n),
                             std::numeric_limits<float>::infinity());

  for (std::int64_t step = 0; step < cfg_.steps; ++step) {
    w.zero_grad();
    ag::Var adv = ag::mul_scalar(ag::add_scalar(ag::tanh(w), 1.0f), 0.5f);
    ag::Var logits = model.forward(adv);

    // f6 margin: max(Z_y - max_{j != y} Z_j, -kappa).
    const auto wrong = best_wrong_class(logits.value(), y);
    ag::Var real = ag::gather_cols(logits, y);
    ag::Var other = ag::gather_cols(logits, wrong);
    ag::Var margin = ag::relu(ag::add_scalar(ag::sub(real, other), kappa_));

    ag::Var dist = ag::sum(ag::square(ag::sub(adv, ag::Var::constant(x))));
    ag::Var loss = ag::add(dist, ag::mul_scalar(ag::sum(margin), c_));
    loss.backward();

    // Track best (lowest-L2 successful) adversarial example per sample.
    // Per-example batch loop: the L2 distances and copy-backs touch disjoint
    // rows, so examples split across the pool.
    const Tensor adv_now = adv.value();
    const auto pred = argmax_rows(logits.value());
    runtime::parallel_for(
        0, n, runtime::grain_for(img),
        [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        if (pred[static_cast<std::size_t>(i)] == y[static_cast<std::size_t>(i)]) {
          continue;
        }
        double l2 = 0.0;
        for (std::int64_t k = 0; k < img; ++k) {
          const double d = adv_now[i * img + k] - x[i * img + k];
          l2 += d * d;
        }
        if (l2 < best_l2[static_cast<std::size_t>(i)]) {
          best_l2[static_cast<std::size_t>(i)] = static_cast<float>(l2);
          std::copy_n(adv_now.data().begin() + i * img, img,
                      best_adv.data().begin() + i * img);
        }
      }
    });

    // Adam update on w.
    const Tensor& g = w.grad();
    const float bc1 = 1.0f - std::pow(b1, static_cast<float>(step + 1));
    const float bc2 = 1.0f - std::pow(b2, static_cast<float>(step + 1));
    runtime::parallel_for(0, w0.numel(), runtime::kElementwiseGrain,
                          [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        m_t[i] = b1 * m_t[i] + (1 - b1) * g[i];
        v_t[i] = b2 * v_t[i] + (1 - b2) * g[i] * g[i];
        const float mhat = m_t[i] / bc1;
        const float vhat = v_t[i] / bc2;
        w.mutable_value()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_adam);
      }
    });
  }

  // Samples never fooled keep their final iterate (standard CW behaviour).
  {
    ag::NoGradGuard ng;
    const Tensor final_adv =
        ibrar::mul_scalar(ibrar::add_scalar(ibrar::tanh(w.value()), 1.0f), 0.5f);
    for (std::int64_t i = 0; i < n; ++i) {
      if (std::isinf(best_l2[static_cast<std::size_t>(i)])) {
        std::copy_n(final_adv.data().begin() + i * img, img,
                    best_adv.data().begin() + i * img);
      }
    }
  }
  return best_adv;
}

}  // namespace ibrar::attacks
