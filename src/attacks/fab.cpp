#include "attacks/fab.hpp"

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {

Tensor FAB::perturb(models::TapClassifier& model, const Tensor& x,
                    const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  const auto n = x.dim(0);
  const std::int64_t img = x.numel() / n;

  Tensor adv = x;
  Tensor best = x;
  std::vector<bool> fooled(static_cast<std::size_t>(n), false);

  for (std::int64_t step = 0; step < cfg_.steps; ++step) {
    ag::Var input = ag::Var::param(adv);
    ag::Var logits = model.forward(input);
    const Tensor lv = logits.value();

    // Most competitive wrong class per sample.
    std::vector<std::int64_t> target(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      float bestv = -std::numeric_limits<float>::infinity();
      std::int64_t bj = y[static_cast<std::size_t>(i)] == 0 ? 1 : 0;
      for (std::int64_t j = 0; j < lv.dim(1); ++j) {
        if (j == y[static_cast<std::size_t>(i)]) continue;
        if (lv.at(i, j) > bestv) {
          bestv = lv.at(i, j);
          bj = j;
        }
      }
      target[static_cast<std::size_t>(i)] = bj;
    }

    // Margin f_i = z_y - z_target; its input gradient per sample (samples are
    // independent, so one backward over the summed margins suffices).
    ag::Var margin = ag::sub(ag::gather_cols(logits, y),
                             ag::gather_cols(logits, target));
    ag::Var total = ag::sum(margin);
    total.backward();
    const Tensor g = input.grad();
    const Tensor mv = margin.value();

    for (std::int64_t i = 0; i < n; ++i) {
      const float m = mv.at(i, 0);
      if (m <= 0.0f) {
        // Already across the boundary: record and bias toward the original
        // point to shrink the perturbation (FAB's backward step).
        fooled[static_cast<std::size_t>(i)] = true;
        std::copy_n(adv.data().begin() + i * img, img,
                    best.data().begin() + i * img);
        for (std::int64_t k = 0; k < img; ++k) {
          adv[i * img + k] = backward_bias_ * adv[i * img + k] +
                             (1.0f - backward_bias_) * x[i * img + k];
        }
        continue;
      }
      // Linf-minimal step onto {z_y = z_t}: delta = -m * sign(w) / ||w||_1.
      double l1 = 0.0;
      for (std::int64_t k = 0; k < img; ++k) l1 += std::fabs(g[i * img + k]);
      if (l1 < 1e-12) continue;
      const float scale = overshoot_ * m / static_cast<float>(l1);
      for (std::int64_t k = 0; k < img; ++k) {
        const float s = g[i * img + k] > 0 ? 1.0f : (g[i * img + k] < 0 ? -1.0f : 0.0f);
        adv[i * img + k] -= scale * s;
      }
    }
    project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }

  // Samples never fooled return their last iterate.
  for (std::int64_t i = 0; i < n; ++i) {
    if (!fooled[static_cast<std::size_t>(i)]) {
      std::copy_n(adv.data().begin() + i * img, img, best.data().begin() + i * img);
    }
  }
  return best;
}

}  // namespace ibrar::attacks
