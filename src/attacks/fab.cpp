#include "attacks/fab.hpp"

#include <cmath>
#include <limits>

#include "attacks/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {

Tensor FAB::perturb(models::TapClassifier& model, const Tensor& x,
                    const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  const auto n = x.dim(0);
  const std::int64_t img = x.numel() / n;

  // Engine best-tracking: every boundary crossing overwrites the recorded
  // iterate (metric 0 marks success); rows that never cross fall back to the
  // final iterate. With cfg_.active_set on, crossed examples retire instead
  // of running the backward-bias refinement — their recorded iterate is
  // already adversarial, so robust accuracy is unchanged while the linear
  // solves shrink with the surviving set.
  engine::BestTracker tracker(x);
  engine::ActiveSet active(n);
  Tensor adv = x;
  Tensor xw = x;
  std::vector<std::int64_t> yw = y;

  for (std::int64_t step = 0; step < cfg_.steps && !active.empty(); ++step) {
    const auto k = active.size();
    ag::Var input = ag::Var::param(adv);
    ag::Var logits = model.forward(input);
    const Tensor lv = logits.value();

    // Most competitive wrong class per sample.
    const auto target = engine::best_wrong_class(lv, yw);

    // Margin f_i = z_y - z_target; its input gradient per sample (samples are
    // independent, so one backward over the summed margins suffices).
    ag::Var margin = ag::sub(ag::gather_cols(logits, yw),
                             ag::gather_cols(logits, target));
    ag::Var total = ag::sum(margin);
    total.backward();
    const Tensor g = input.grad();
    const Tensor mv = margin.value();

    std::vector<char> keep(static_cast<std::size_t>(k), 1);
    bool any_cross = false;
    for (std::int64_t i = 0; i < k; ++i) {
      const float m = mv.at(i, 0);
      if (m <= 0.0f) {
        // Already across the boundary: record and bias toward the original
        // point to shrink the perturbation (FAB's backward step).
        any_cross = true;
        tracker.overwrite_row(active.rows()[static_cast<std::size_t>(i)], adv,
                              i, 0.0f);
        if (cfg_.active_set) {
          keep[static_cast<std::size_t>(i)] = 0;
          continue;
        }
        for (std::int64_t c = 0; c < img; ++c) {
          adv[i * img + c] = backward_bias_ * adv[i * img + c] +
                             (1.0f - backward_bias_) * xw[i * img + c];
        }
        continue;
      }
      // Linf-minimal step onto {z_y = z_t}: delta = -m * sign(w) / ||w||_1.
      double l1 = 0.0;
      for (std::int64_t c = 0; c < img; ++c) l1 += std::fabs(g[i * img + c]);
      if (l1 < 1e-12) continue;
      const float scale = overshoot_ * m / static_cast<float>(l1);
      for (std::int64_t c = 0; c < img; ++c) {
        const float s = g[i * img + c] > 0 ? 1.0f : (g[i * img + c] < 0 ? -1.0f : 0.0f);
        adv[i * img + c] -= scale * s;
      }
    }
    if (cfg_.active_set && any_cross) {
      const auto kept = active.retain(keep);
      if (active.empty()) break;
      adv = take_rows(adv, kept);
      xw = take_rows(xw, kept);
      yw = engine::subset(yw, kept);
    }
    project_linf(adv, xw, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }

  // Samples never fooled return their last iterate.
  if (!active.empty()) tracker.fill_unimproved(active.rows(), adv);
  return tracker.release();
}

}  // namespace ibrar::attacks
