#pragma once
// Common white-box attack interface.
//
// All attacks follow the Torchattacks conventions the paper uses: inputs in
// [0,1], Linf budget eps = 8/255, step alpha = 2/255 unless noted. perturb()
// temporarily switches the model to eval mode and pauses parameter gradients
// (only input gradients are needed), restoring both before returning.

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "models/classifier.hpp"
#include "util/rng.hpp"

namespace ibrar::attacks {

/// Which iterate an engine-driven attack returns (see attacks/engine.hpp).
enum class BestMode {
  kAuto,         ///< attack-specific seed-parity default (PGD: per-restart
                 ///< margin tracking when restarts > 1, else last iterate)
  kLastIterate,  ///< classic PGD: whatever the last step produced
  kPerRestart,   ///< lowest-margin trajectory endpoint across restarts
  kPerStep,      ///< lowest-margin iterate across every step and restart
};

struct AttackConfig {
  float eps = 8.0f / 255.0f;    ///< Linf radius (CW interprets it loosely)
  float alpha = 2.0f / 255.0f;  ///< per-step size
  std::int64_t steps = 10;
  std::int64_t restarts = 1;    ///< PGD random restarts (keep best margin)
  float clip_lo = 0.0f;
  float clip_hi = 1.0f;
  bool random_start = true;     ///< PGD-style random init in the eps-ball
  std::uint64_t seed = 0xa77ac4;
  /// Active-set batch scheduler: drop already-misclassified examples from the
  /// working batch after each step so compute tracks the surviving set.
  /// Implies kPerStep tracking (retired examples keep their min-margin
  /// iterate), so against a best=step full-batch run it is cost-only.
  /// Rejected (throw) by batch-coupled compositions (MI/NI, adaptive).
  bool active_set = false;
  BestMode track_best = BestMode::kAuto;
};

class Attack {
 public:
  explicit Attack(AttackConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}
  virtual ~Attack() = default;

  virtual std::string name() const = 0;

  /// Adversarial version of batch `x` (same shape), targeting labels `y`.
  virtual Tensor perturb(models::TapClassifier& model, const Tensor& x,
                         const std::vector<std::int64_t>& y) = 0;

  const AttackConfig& config() const { return cfg_; }

 protected:
  AttackConfig cfg_;
  Rng rng_;
};

using AttackPtr = std::unique_ptr<Attack>;

/// RAII: set eval mode + pause parameter grads for attack-time forwards.
class AttackModeGuard {
 public:
  explicit AttackModeGuard(models::TapClassifier& model);
  ~AttackModeGuard();
  AttackModeGuard(const AttackModeGuard&) = delete;
  AttackModeGuard& operator=(const AttackModeGuard&) = delete;

 private:
  models::TapClassifier& model_;
  bool was_training_;
  std::vector<ag::NodePtr> paused_;
};

/// Gradient of mean CE loss at `x` (eval-mode forward), via one backward pass.
Tensor input_gradient(models::TapClassifier& model, const Tensor& x,
                      const std::vector<std::int64_t>& y);

/// Clip `adv` to the Linf eps-ball around `x` and to [lo, hi], in place.
void project_linf(Tensor& adv, const Tensor& x, float eps, float lo, float hi);

/// Per-sample margin z_y - max_{j != y} z_j of a logits batch (negative means
/// misclassified). Shared by the margin-driven attacks (Square, PGD restarts).
std::vector<float> margin_loss(const Tensor& logits,
                               const std::vector<std::int64_t>& y);

/// Predicted class per row of a (possibly adversarial) batch (no grad).
std::vector<std::int64_t> predict(models::TapClassifier& model, const Tensor& x);

/// Fraction of `y` predicted correctly on `x` (no grad).
double accuracy(models::TapClassifier& model, const Tensor& x,
                const std::vector<std::int64_t>& y);

}  // namespace ibrar::attacks
