#pragma once
// Adaptive white-box attack against IB-RAR (paper Sec. A.2): PGD that
// maximizes the full IB-RAR training objective
//   L = CE + alpha*sum_l I(X, T_l) - beta*sum_l I(Y, T_l)
// instead of plain CE, using the defender's own alpha/beta and layer set.

#include "attacks/attack.hpp"
#include "mi/objective.hpp"

namespace ibrar::attacks {

class AdaptivePGD : public Attack {
 public:
  AdaptivePGD(AttackConfig cfg, mi::IBObjectiveConfig ib)
      : Attack(cfg), ib_(std::move(ib)) {}
  std::string name() const override {
    return "PGD" + std::to_string(cfg_.steps) + "-AD";
  }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

 private:
  mi::IBObjectiveConfig ib_;
};

}  // namespace ibrar::attacks
