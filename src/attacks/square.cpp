#include "attacks/square.hpp"

#include <algorithm>
#include <cmath>

#include "attacks/engine.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {
namespace {

/// Square side length schedule from the remaining query budget (coarse
/// version of the original's p-schedule).
std::int64_t side_for_step(std::int64_t step, std::int64_t steps, float p_init,
                           std::int64_t hw) {
  const float frac = p_init * std::max(0.1f, 1.0f - static_cast<float>(step) /
                                                        static_cast<float>(steps));
  const auto side = static_cast<std::int64_t>(
      std::llround(std::sqrt(frac) * static_cast<float>(hw)));
  return std::clamp<std::int64_t>(side, 1, hw);
}

/// One proposed square per still-unfooled example (indices are LOCAL
/// positions in the compacted working batch).
struct Patch {
  std::int64_t local;
  std::int64_t oy, ox;
  std::vector<float> sign;  ///< +/-eps per channel
};

}  // namespace

Tensor SquareAttack::perturb(models::TapClassifier& model, const Tensor& x,
                             const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  ag::NoGradGuard ng;  // fully black-box: forward passes only
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);

  // Init: vertical +/-eps stripes (as in the reference implementation). The
  // Bernoulli draws happen serially in the original (i, ic, xw) order so the
  // RNG stream is thread-count independent; painting then fans out per image.
  Tensor adv = x;
  std::vector<float> stripe(static_cast<std::size_t>(n * c * w));
  for (auto& s : stripe) s = rng_.bernoulli(0.5) ? cfg_.eps : -cfg_.eps;
  runtime::parallel_for(0, n, 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t ic = 0; ic < c; ++ic) {
        for (std::int64_t xw = 0; xw < w; ++xw) {
          const float s = stripe[static_cast<std::size_t>((i * c + ic) * w + xw)];
          for (std::int64_t yh = 0; yh < h; ++yh) adv.at(i, ic, yh, xw) += s;
        }
      }
    }
  });
  project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);

  // Active-set scheduling is always on here: random search only ever proposes
  // patches for unfooled examples (exactly the seed's skip), so compacting
  // the proposal forward to those rows changes no margin and no RNG draw —
  // the query cost simply tracks the surviving set.
  std::vector<float> init_margin;
  {
    const Tensor logits = model.forward(ag::Var::constant(adv)).value();
    init_margin = margin_loss(logits, y);
  }
  engine::BestTracker tracker(std::move(adv), init_margin);
  engine::ActiveSet active(n);
  {
    std::vector<char> keep(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      keep[static_cast<std::size_t>(i)] =
          init_margin[static_cast<std::size_t>(i)] >= 0.0f;
    }
    active.retain(keep);
  }

  std::vector<Patch> patches;
  patches.reserve(static_cast<std::size_t>(n));
  for (std::int64_t step = 0; step < cfg_.steps && !active.empty(); ++step) {
    const auto side = side_for_step(step, cfg_.steps, p_init_, std::min(h, w));

    // Draw every proposal serially (ascending batch order, matching the
    // seed's stream), then paint the independent squares on the pool.
    patches.clear();
    for (std::int64_t li = 0; li < active.size(); ++li) {
      Patch p;
      p.local = li;
      p.oy = rng_.randint(0, h - side);
      p.ox = rng_.randint(0, w - side);
      p.sign.resize(static_cast<std::size_t>(c));
      for (std::int64_t ic = 0; ic < c; ++ic) {
        p.sign[static_cast<std::size_t>(ic)] =
            rng_.bernoulli(0.5) ? cfg_.eps : -cfg_.eps;
      }
      patches.push_back(std::move(p));
    }

    // Proposal batch: current best rows of the survivors with one square
    // repainted from the clean image.
    Tensor proposal = take_rows(tracker.best(), active.rows());
    const Tensor x_rows = take_rows(x, active.rows());
    runtime::parallel_for(
        0, static_cast<std::int64_t>(patches.size()), 1,
        [&](std::int64_t p0, std::int64_t p1) {
          for (std::int64_t pi = p0; pi < p1; ++pi) {
            const Patch& p = patches[static_cast<std::size_t>(pi)];
            for (std::int64_t ic = 0; ic < c; ++ic) {
              const float s = p.sign[static_cast<std::size_t>(ic)];
              for (std::int64_t yy = 0; yy < side; ++yy) {
                for (std::int64_t xx = 0; xx < side; ++xx) {
                  proposal.at(p.local, ic, p.oy + yy, p.ox + xx) =
                      x_rows.at(p.local, ic, p.oy + yy, p.ox + xx) + s;
                }
              }
            }
          }
        });
    project_linf(proposal, x_rows, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);

    const auto yw = engine::subset(y, active.rows());
    const auto cand = margin_loss(
        model.forward(ag::Var::constant(proposal)).value(), yw);
    tracker.update_rows(active.rows(), proposal, cand);

    std::vector<char> keep(static_cast<std::size_t>(active.size()));
    for (std::int64_t li = 0; li < active.size(); ++li) {
      keep[static_cast<std::size_t>(li)] =
          tracker.metric()[static_cast<std::size_t>(
              active.rows()[static_cast<std::size_t>(li)])] >= 0.0f;
    }
    active.retain(keep);
  }
  return tracker.release();
}

}  // namespace ibrar::attacks
