#include "attacks/square.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {
namespace {

/// Margin loss per sample: z_y - max_{j != y} z_j (negative = misclassified).
std::vector<float> margins(const Tensor& logits,
                           const std::vector<std::int64_t>& y) {
  const auto n = logits.dim(0), c = logits.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    float best_other = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < c; ++j) {
      if (j == y[static_cast<std::size_t>(i)]) continue;
      best_other = std::max(best_other, logits.at(i, j));
    }
    out[static_cast<std::size_t>(i)] =
        logits.at(i, y[static_cast<std::size_t>(i)]) - best_other;
  }
  return out;
}

/// Square side length schedule from the remaining query budget (coarse
/// version of the original's p-schedule).
std::int64_t side_for_step(std::int64_t step, std::int64_t steps, float p_init,
                           std::int64_t hw) {
  const float frac = p_init * std::max(0.1f, 1.0f - static_cast<float>(step) /
                                                        static_cast<float>(steps));
  const auto side = static_cast<std::int64_t>(
      std::llround(std::sqrt(frac) * static_cast<float>(hw)));
  return std::clamp<std::int64_t>(side, 1, hw);
}

}  // namespace

Tensor SquareAttack::perturb(models::TapClassifier& model, const Tensor& x,
                             const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  ag::NoGradGuard ng;  // fully black-box: forward passes only
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);

  // Init: vertical +/-eps stripes (as in the reference implementation).
  Tensor adv = x;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      for (std::int64_t xw = 0; xw < w; ++xw) {
        const float s = rng_.bernoulli(0.5) ? cfg_.eps : -cfg_.eps;
        for (std::int64_t yh = 0; yh < h; ++yh) adv.at(i, ic, yh, xw) += s;
      }
    }
  }
  project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);

  auto forward_margins = [&](const Tensor& imgs) {
    return margins(model.forward(ag::Var::constant(imgs)).value(), y);
  };
  std::vector<float> best = forward_margins(adv);

  Tensor proposal = adv;
  for (std::int64_t step = 0; step < cfg_.steps; ++step) {
    const auto side = side_for_step(step, cfg_.steps, p_init_, std::min(h, w));
    proposal = adv;
    for (std::int64_t i = 0; i < n; ++i) {
      if (best[static_cast<std::size_t>(i)] < 0) continue;  // already fooled
      const auto oy = rng_.randint(0, h - side);
      const auto ox = rng_.randint(0, w - side);
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const float s = rng_.bernoulli(0.5) ? cfg_.eps : -cfg_.eps;
        for (std::int64_t yy = 0; yy < side; ++yy) {
          for (std::int64_t xx = 0; xx < side; ++xx) {
            proposal.at(i, ic, oy + yy, ox + xx) =
                x.at(i, ic, oy + yy, ox + xx) + s;
          }
        }
      }
    }
    project_linf(proposal, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
    const auto cand = forward_margins(proposal);
    const std::int64_t img = c * h * w;
    for (std::int64_t i = 0; i < n; ++i) {
      if (cand[static_cast<std::size_t>(i)] < best[static_cast<std::size_t>(i)]) {
        best[static_cast<std::size_t>(i)] = cand[static_cast<std::size_t>(i)];
        std::copy_n(proposal.data().begin() + i * img, img,
                    adv.data().begin() + i * img);
      }
    }
  }
  return adv;
}

}  // namespace ibrar::attacks
