#include "attacks/nifgsm.hpp"

#include "attacks/engine.hpp"

namespace ibrar::attacks {

Tensor NIFGSM::perturb(models::TapClassifier& model, const Tensor& x,
                       const std::vector<std::int64_t>& y) {
  // MI-FGSM with the gradient evaluated at the Nesterov look-ahead point
  // adv + alpha*mu*g_acc (projected back into the ball before the forward).
  engine::Spec spec;
  spec.init = engine::Init::kNone;
  spec.step = engine::Step::kNesterovSign;
  spec.decay = momentum_;
  spec.l1_normalize = true;
  return engine::run(model, x, y, cfg_, spec, rng_);
}

}  // namespace ibrar::attacks
