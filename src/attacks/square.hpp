#pragma once
// Square Attack (Andriushchenko et al. 2020), simplified: black-box random
// search in the Linf ball. Each iteration proposes flipping a random square
// patch of the perturbation to +/-eps per channel and keeps the proposal if
// the margin loss does not decrease.
//
// Included as an extension beyond the paper's battery: a gradient-free attack
// is the standard control for gradient masking — a defense whose PGD accuracy
// far exceeds its Square accuracy is obfuscating gradients rather than
// actually robust.

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class SquareAttack : public Attack {
 public:
  /// cfg.steps = number of random-search queries; p_init = initial fraction
  /// of the image covered by a proposal square.
  explicit SquareAttack(AttackConfig cfg, float p_init = 0.3f)
      : Attack(cfg), p_init_(p_init) {}
  std::string name() const override {
    return "Square" + std::to_string(cfg_.steps);
  }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

 private:
  float p_init_;
};

}  // namespace ibrar::attacks
