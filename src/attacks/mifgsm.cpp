#include "attacks/mifgsm.hpp"

#include "attacks/engine.hpp"

namespace ibrar::attacks {

Tensor MIFGSM::perturb(models::TapClassifier& model, const Tensor& x,
                       const std::vector<std::int64_t>& y) {
  // CE loss, batch-mean-L1-normalized gradients accumulated with decay mu,
  // sign of the accumulator as the step direction.
  engine::Spec spec;
  spec.init = engine::Init::kNone;
  spec.step = engine::Step::kMomentumSign;
  spec.decay = decay_;
  spec.l1_normalize = true;
  return engine::run(model, x, y, cfg_, spec, rng_);
}

}  // namespace ibrar::attacks
