#include "attacks/mifgsm.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace ibrar::attacks {

Tensor MIFGSM::perturb(models::TapClassifier& model, const Tensor& x,
                       const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  Tensor adv = x;
  Tensor g_acc(x.shape());
  for (std::int64_t s = 0; s < cfg_.steps; ++s) {
    Tensor g = input_gradient(model, adv, y);
    const float l1 = sum_all(abs(g)) / static_cast<float>(g.dim(0));
    if (l1 > 1e-12f) g = mul_scalar(g, 1.0f / l1);
    g_acc = add(mul_scalar(g_acc, decay_), g);
    adv = add(adv, mul_scalar(sign(g_acc), cfg_.alpha));
    project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }
  return adv;
}

}  // namespace ibrar::attacks
