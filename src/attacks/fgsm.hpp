#pragma once
// Fast Gradient Sign Method (Goodfellow et al. 2015):
// x' = clip(x + eps * sign(grad_x CE)).

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class FGSM : public Attack {
 public:
  explicit FGSM(AttackConfig cfg) : Attack(cfg) {}
  std::string name() const override { return "FGSM"; }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;
};

}  // namespace ibrar::attacks
