#pragma once
// Carlini & Wagner L2 attack with tanh change-of-variables and the f6 margin
// objective, following the Torchattacks parameterization the paper uses
// (fixed trade-off constant c, Adam optimizer, best-so-far tracking).

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class CW : public Attack {
 public:
  /// cfg.steps = optimization steps (paper: 200; quick profile uses fewer).
  explicit CW(AttackConfig cfg, float c = 1.0f, float kappa = 0.0f,
              float lr = 0.01f)
      : Attack(cfg), c_(c), kappa_(kappa), lr_(lr) {}
  std::string name() const override { return "CW" + std::to_string(cfg_.steps); }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

 private:
  float c_;
  float kappa_;
  float lr_;
};

}  // namespace ibrar::attacks
