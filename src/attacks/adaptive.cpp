#include "attacks/adaptive.hpp"

#include "attacks/engine.hpp"

namespace ibrar::attacks {

Tensor AdaptivePGD::perturb(models::TapClassifier& model, const Tensor& x,
                            const std::vector<std::int64_t>& y) {
  // PGD whose loss is the defender's full IB-RAR objective. The MI estimators
  // couple examples through the batch Gram matrices, so the composition is
  // declared batch-coupled (the engine rejects active_set for it).
  engine::Spec spec;
  spec.init = engine::Init::kUniformBall;
  spec.step = engine::Step::kSign;
  spec.batch_coupled_loss = true;
  spec.loss = [this](models::TapClassifier& m, const ag::Var& input,
                     const std::vector<std::int64_t>& labels,
                     const std::vector<std::int64_t>& /*rows*/,
                     ag::Var* logits_out) {
    auto out = m.forward_with_taps(input);
    *logits_out = out.logits;
    ag::Var loss = ag::cross_entropy(out.logits, labels);
    return ag::add(loss, mi::ib_objective(input, out.taps, labels,
                                          m.num_classes(), ib_));
  };
  return engine::run(model, x, y, cfg_, spec, rng_);
}

}  // namespace ibrar::attacks
