#include "attacks/adaptive.hpp"

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::attacks {

Tensor AdaptivePGD::perturb(models::TapClassifier& model, const Tensor& x,
                            const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  Tensor adv = x;
  if (cfg_.random_start) {
    adv = add(adv, rand_uniform(x.shape(), rng_, -cfg_.eps, cfg_.eps));
    project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }
  const auto num_classes = model.num_classes();
  for (std::int64_t s = 0; s < cfg_.steps; ++s) {
    ag::Var input = ag::Var::param(adv);
    auto out = model.forward_with_taps(input);
    ag::Var loss = ag::cross_entropy(out.logits, y);
    // The defender's regularizer, differentiated through both the input
    // kernel K_X and the tap kernels K_T.
    loss = ag::add(loss, mi::ib_objective(input, out.taps, y, num_classes, ib_));
    loss.backward();
    adv = add(adv, mul_scalar(sign(input.grad()), cfg_.alpha));
    project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }
  return adv;
}

}  // namespace ibrar::attacks
