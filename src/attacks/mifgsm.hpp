#pragma once
// MI-FGSM (Dong et al. 2018): momentum iterative FGSM — the predecessor of
// NI-FGSM (which the paper evaluates); included as an extension attack so the
// momentum family is complete. Accumulates L1-normalized gradients with decay
// mu and steps along the sign of the accumulator.

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class MIFGSM : public Attack {
 public:
  explicit MIFGSM(AttackConfig cfg, float decay = 1.0f)
      : Attack(cfg), decay_(decay) {}
  std::string name() const override {
    return "MIFGSM" + std::to_string(cfg_.steps);
  }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

 private:
  float decay_;
};

}  // namespace ibrar::attacks
