#include "attacks/engine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/profile.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks::engine {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<std::int64_t> iota_rows(std::int64_t n) {
  std::vector<std::int64_t> r(static_cast<std::size_t>(n));
  std::iota(r.begin(), r.end(), 0);
  return r;
}

}  // namespace

// ---- loss builders ----------------------------------------------------------

LossBuilder ce_loss() {
  return [](models::TapClassifier& model, const ag::Var& input,
            const std::vector<std::int64_t>& y,
            const std::vector<std::int64_t>& /*rows*/, ag::Var* logits_out) {
    ag::Var logits = model.forward(input);
    *logits_out = logits;
    return ag::cross_entropy(logits, y);
  };
}

LossBuilder margin_loss() {
  return [](models::TapClassifier& model, const ag::Var& input,
            const std::vector<std::int64_t>& y,
            const std::vector<std::int64_t>& /*rows*/, ag::Var* logits_out) {
    ag::Var logits = model.forward(input);
    *logits_out = logits;
    const auto wrong = best_wrong_class(logits.value(), y);
    ag::Var m = ag::sub(ag::gather_cols(logits, y),
                        ag::gather_cols(logits, wrong));
    // The engine maximizes; minimizing the margin drives misclassification.
    return ag::neg(ag::mean(m));
  };
}

LossBuilder kl_vs_clean_loss(Tensor p_clean) {
  return [p = std::move(p_clean)](models::TapClassifier& model,
                                  const ag::Var& input,
                                  const std::vector<std::int64_t>& /*y*/,
                                  const std::vector<std::int64_t>& rows,
                                  ag::Var* logits_out) {
    ag::Var logits = model.forward(input);
    *logits_out = logits;
    const Tensor p_rows = static_cast<std::int64_t>(rows.size()) == p.dim(0)
                              ? p
                              : take_rows(p, rows);
    return ag::kl_div(ag::Var::constant(p_rows), ag::log_softmax(logits));
  };
}

// ---- shared sub-primitives --------------------------------------------------

std::vector<std::int64_t> best_wrong_class(const Tensor& logits,
                                           const std::vector<std::int64_t>& y) {
  const auto m = logits.dim(0), c = logits.dim(1);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    float best = -std::numeric_limits<float>::infinity();
    std::int64_t bj = y[static_cast<std::size_t>(i)] == 0 ? 1 : 0;
    for (std::int64_t j = 0; j < c; ++j) {
      if (j == y[static_cast<std::size_t>(i)]) continue;
      if (logits.at(i, j) > best) {
        best = logits.at(i, j);
        bj = j;
      }
    }
    idx[static_cast<std::size_t>(i)] = bj;
  }
  return idx;
}

std::vector<std::int64_t> subset(const std::vector<std::int64_t>& v,
                                 const std::vector<std::int64_t>& idx) {
  std::vector<std::int64_t> out;
  out.reserve(idx.size());
  for (const auto i : idx) out.push_back(v.at(static_cast<std::size_t>(i)));
  return out;
}

BestTracker::BestTracker(const Tensor& init)
    : best_(init),
      metric_(static_cast<std::size_t>(init.dim(0)), kInf),
      row_size_(init.dim(0) > 0 ? init.numel() / init.dim(0) : 0) {}

BestTracker::BestTracker(Tensor init, std::vector<float> metric)
    : best_(std::move(init)),
      metric_(std::move(metric)),
      row_size_(best_.dim(0) > 0 ? best_.numel() / best_.dim(0) : 0) {
  if (metric_.size() != static_cast<std::size_t>(best_.dim(0))) {
    throw std::invalid_argument("BestTracker: metric length != rows");
  }
}

void BestTracker::update_rows(const std::vector<std::int64_t>& rows,
                              const Tensor& cand,
                              const std::vector<float>& metric) {
  const auto k = static_cast<std::int64_t>(rows.size());
  runtime::parallel_for(
      0, k, runtime::grain_for(row_size_),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto u = static_cast<std::size_t>(i);
          const auto r = rows[u];
          if (metric[u] < metric_[static_cast<std::size_t>(r)]) {
            metric_[static_cast<std::size_t>(r)] = metric[u];
            std::copy_n(cand.data().begin() + i * row_size_, row_size_,
                        best_.data().begin() + r * row_size_);
          }
        }
      });
}

void BestTracker::overwrite_row(std::int64_t row, const Tensor& cand,
                                std::int64_t cand_row, float metric) {
  metric_[static_cast<std::size_t>(row)] = metric;
  std::copy_n(cand.data().begin() + cand_row * row_size_, row_size_,
              best_.data().begin() + row * row_size_);
}

void BestTracker::overwrite_rows(const std::vector<std::int64_t>& rows,
                                 const Tensor& cand) {
  const auto k = static_cast<std::int64_t>(rows.size());
  runtime::parallel_for(
      0, k, runtime::grain_for(row_size_),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto r = rows[static_cast<std::size_t>(i)];
          std::copy_n(cand.data().begin() + i * row_size_, row_size_,
                      best_.data().begin() + r * row_size_);
        }
      });
}

void BestTracker::fill_unimproved(const std::vector<std::int64_t>& rows,
                                  const Tensor& cand) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto r = rows[i];
    if (std::isinf(metric_[static_cast<std::size_t>(r)])) {
      std::copy_n(cand.data().begin() +
                      static_cast<std::int64_t>(i) * row_size_,
                  row_size_, best_.data().begin() + r * row_size_);
    }
  }
}

bool BestTracker::improved(std::int64_t row) const {
  return !std::isinf(metric_[static_cast<std::size_t>(row)]);
}

ActiveSet::ActiveSet(std::int64_t n) : rows_(iota_rows(n)) {}

std::vector<std::int64_t> ActiveSet::retain(const std::vector<char>& keep) {
  if (keep.size() != rows_.size()) {
    throw std::invalid_argument("ActiveSet::retain: flag length != size");
  }
  std::vector<std::int64_t> kept_local;
  kept_local.reserve(rows_.size());
  std::vector<std::int64_t> kept_rows;
  kept_rows.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (keep[i]) {
      kept_local.push_back(static_cast<std::int64_t>(i));
      kept_rows.push_back(rows_[i]);
    }
  }
  rows_ = std::move(kept_rows);
  return kept_local;
}

// ---- the engine loop --------------------------------------------------------

Tensor run(models::TapClassifier& model, const Tensor& x,
           const std::vector<std::int64_t>& y, const AttackConfig& cfg,
           const Spec& spec, Rng& rng) {
  static obs::ProfileSite& prof = obs::profile_site("attacks/engine.run");
  obs::ProfileScope prof_scope(prof);
  if (x.rank() < 1 || x.dim(0) == 0) return x;
  const std::int64_t n = x.dim(0);
  if (y.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("engine::run: labels length != batch size");
  }
  if (cfg.active_set && (spec.l1_normalize || spec.batch_coupled_loss)) {
    throw std::invalid_argument(
        "engine::run: active_set=1 is incompatible with batch-coupled "
        "compositions (batch-mean L1 gradient normalization or MI losses) — "
        "dropping rows would change the surviving examples' trajectories; "
        "disable active_set for this attack");
  }
  if (cfg.active_set && spec.step == Step::kNesterovSign) {
    throw std::invalid_argument(
        "engine::run: active_set=1 is incompatible with Nesterov steps — the "
        "per-step logits are evaluated at the look-ahead point, not the "
        "iterate the active set would record");
  }
  const LossBuilder loss = spec.loss ? spec.loss : ce_loss();

  AttackModeGuard guard(model);

  const bool noisy = (spec.init == Init::kUniformBall && cfg.random_start) ||
                     spec.init == Init::kGaussian;
  // Without a random start every trajectory is identical, so extra restarts
  // would just repeat the first one at full cost (seed-PGD semantics).
  const std::int64_t restarts =
      noisy ? std::max<std::int64_t>(1, cfg.restarts) : 1;
  const float alpha = spec.step_size >= 0.0f ? spec.step_size : cfg.alpha;

  BestMode best = cfg.track_best;
  if (best == BestMode::kAuto) {
    best = restarts > 1 ? BestMode::kPerRestart : BestMode::kLastIterate;
  }
  // Last-iterate across restarts would throw away every trajectory but the
  // final one; promote to the seed implementation's per-restart tracking.
  if (restarts > 1 && best == BestMode::kLastIterate) {
    best = BestMode::kPerRestart;
  }
  // The active set retires examples at their first misclassified iterate, so
  // it implies per-step tracking: the margins are already computed, and only
  // under kPerStep does the full-batch run return a misclassified iterate for
  // exactly the same examples — keeping the scheduler cost-only. (Comparing
  // against an active_set=0 run therefore needs best=step there too.)
  if (cfg.active_set) best = BestMode::kPerStep;

  BestTracker tracker(x);
  std::vector<std::uint8_t> done(static_cast<std::size_t>(n), 0);

  for (std::int64_t r = 0; r < restarts; ++r) {
    // Init noise is drawn for the FULL batch even when the active set has
    // shrunk: the stream then depends only on (seed, restart, position), so
    // survivors see bit-identical draws with the active set on or off.
    Tensor start = x;
    if (noisy) {
      const Tensor noise =
          spec.init == Init::kUniformBall
              ? rand_uniform(x.shape(), rng, -cfg.eps, cfg.eps)
              : randn(x.shape(), rng, 0.0f, spec.init_sigma);
      start = add(start, noise);
      project_linf(start, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
    }

    std::vector<std::int64_t> rows;
    Tensor adv, xw;
    std::vector<std::int64_t> yw;
    if (cfg.active_set) {
      rows.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        if (!done[static_cast<std::size_t>(i)]) rows.push_back(i);
      }
      // continue, not break: later restarts must still consume their noise
      // draws (above) so the persistent stream never shifts with retirement.
      if (rows.empty()) continue;
      adv = take_rows(start, rows);
      xw = take_rows(x, rows);
      yw = subset(y, rows);
    } else {
      rows = iota_rows(n);
      adv = start;
      xw = x;
      yw = y;
    }

    Tensor g_acc;
    if (spec.step != Step::kSign) g_acc = Tensor(adv.shape());

    for (std::int64_t s = 0; s < cfg.steps; ++s) {
      static obs::ProfileSite& step_prof =
          obs::profile_site("attacks/engine.step");
      obs::ProfileScope step_scope(step_prof);
      Tensor point = adv;
      if (spec.step == Step::kNesterovSign) {
        point = add(adv, mul_scalar(g_acc, alpha * spec.decay));
        project_linf(point, xw, cfg.eps, cfg.clip_lo, cfg.clip_hi);
      }

      ag::Var input = ag::Var::param(point);
      ag::Var logits;
      ag::Var l = loss(model, input, yw, rows, &logits);
      l.backward();
      Tensor g = input.grad();

      if (cfg.active_set || best == BestMode::kPerStep) {
        // Margins were measured at `point` (== adv for sign steps, the
        // projected look-ahead for Nesterov), so `point` is the iterate the
        // tracker must pair with them — metric and tensor always agree.
        const auto m = attacks::margin_loss(logits.value(), yw);
        if (best == BestMode::kPerStep) tracker.update_rows(rows, point, m);
        if (cfg.active_set) {
          // update_rows above already recorded every misclassified iterate
          // (active_set implies kPerStep), so retirement is pure bookkeeping.
          std::vector<std::int64_t> keep_local;
          keep_local.reserve(rows.size());
          for (std::size_t i = 0; i < rows.size(); ++i) {
            if (m[i] < 0.0f) {
              done[static_cast<std::size_t>(rows[i])] = 1;
            } else {
              keep_local.push_back(static_cast<std::int64_t>(i));
            }
          }
          if (keep_local.size() != rows.size()) {
            if (keep_local.empty()) {
              rows.clear();
              break;
            }
            adv = take_rows(adv, keep_local);
            xw = take_rows(xw, keep_local);
            g = take_rows(g, keep_local);
            yw = subset(yw, keep_local);
            rows = subset(rows, keep_local);
            if (spec.step != Step::kSign) g_acc = take_rows(g_acc, keep_local);
          }
        }
      }

      if (spec.l1_normalize) {
        const float l1 = sum_all(abs(g)) / static_cast<float>(g.dim(0));
        if (l1 > 1e-12f) g = mul_scalar(g, 1.0f / l1);
      }

      switch (spec.step) {
        case Step::kSign:
          adv = add(adv, mul_scalar(sign(g), alpha));
          break;
        case Step::kMomentumSign:
        case Step::kNesterovSign:
          g_acc = add(mul_scalar(g_acc, spec.decay), g);
          adv = add(adv, mul_scalar(sign(g_acc), alpha));
          break;
      }
      project_linf(adv, xw, cfg.eps, cfg.clip_lo, cfg.clip_hi);
    }

    if (rows.empty()) continue;  // everything retired mid-trajectory

    if (best == BestMode::kLastIterate) {
      tracker.overwrite_rows(rows, adv);
    } else {
      // Trajectory-end margin evaluation (the seed multi-restart forward);
      // kPerStep needs it too, since the loop only saw pre-step iterates.
      std::vector<float> m;
      {
        ag::NoGradGuard ng;
        m = attacks::margin_loss(model.forward(ag::Var::constant(adv)).value(),
                                 yw);
      }
      tracker.update_rows(rows, adv, m);
      if (cfg.active_set) {
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (m[i] < 0.0f) done[static_cast<std::size_t>(rows[i])] = 1;
        }
      }
    }
  }
  return tracker.release();
}

}  // namespace ibrar::attacks::engine
