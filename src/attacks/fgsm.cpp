#include "attacks/fgsm.hpp"

#include "attacks/engine.hpp"

namespace ibrar::attacks {

Tensor FGSM::perturb(models::TapClassifier& model, const Tensor& x,
                     const std::vector<std::int64_t>& y) {
  // One CE-sign step of size eps from the clean point.
  AttackConfig cfg = cfg_;
  cfg.steps = 1;
  cfg.restarts = 1;
  cfg.random_start = false;
  engine::Spec spec;
  spec.init = engine::Init::kNone;
  spec.step = engine::Step::kSign;
  spec.step_size = cfg_.eps;
  return engine::run(model, x, y, cfg, spec, rng_);
}

}  // namespace ibrar::attacks
