#include "attacks/fgsm.hpp"

#include "tensor/ops.hpp"

namespace ibrar::attacks {

Tensor FGSM::perturb(models::TapClassifier& model, const Tensor& x,
                     const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  const Tensor g = input_gradient(model, x, y);
  Tensor adv = add(x, mul_scalar(sign(g), cfg_.eps));
  project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  return adv;
}

}  // namespace ibrar::attacks
