#pragma once
// NI-FGSM (Lin et al. 2020): Nesterov-accelerated momentum iterative FGSM.
// The gradient is evaluated at the look-ahead point x + alpha*mu*g, momentum
// accumulates L1-normalized gradients.

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class NIFGSM : public Attack {
 public:
  explicit NIFGSM(AttackConfig cfg, float momentum = 1.0f)
      : Attack(cfg), momentum_(momentum) {}
  std::string name() const override {
    return "NIFGSM" + std::to_string(cfg_.steps);
  }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

 private:
  float momentum_;
};

}  // namespace ibrar::attacks
