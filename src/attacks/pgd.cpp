#include "attacks/pgd.hpp"

#include "attacks/engine.hpp"

namespace ibrar::attacks {

Tensor PGD::perturb(models::TapClassifier& model, const Tensor& x,
                    const std::vector<std::int64_t>& y) {
  // CE loss, sign steps, uniform-in-ball random start, restart scheduling
  // with per-restart margin tracking — all engine defaults.
  engine::Spec spec;
  spec.init = engine::Init::kUniformBall;
  spec.step = engine::Step::kSign;
  return engine::run(model, x, y, cfg_, spec, rng_);
}

}  // namespace ibrar::attacks
