#include "attacks/pgd.hpp"

#include <algorithm>
#include <limits>

#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::attacks {
namespace {

/// One PGD trajectory from a given start (the classic inner loop).
Tensor run_trajectory(models::TapClassifier& model, const Tensor& x,
                      const std::vector<std::int64_t>& y, Tensor adv,
                      const AttackConfig& cfg) {
  for (std::int64_t s = 0; s < cfg.steps; ++s) {
    const Tensor g = input_gradient(model, adv, y);
    adv = add(adv, mul_scalar(sign(g), cfg.alpha));
    project_linf(adv, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
  }
  return adv;
}

}  // namespace

Tensor PGD::perturb(models::TapClassifier& model, const Tensor& x,
                    const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  // Without a random start every trajectory is identical, so extra restarts
  // would just repeat the first one at full cost.
  const std::int64_t restarts =
      cfg_.random_start ? std::max<std::int64_t>(1, cfg_.restarts) : 1;

  auto start_for_restart = [&]() {
    Tensor adv = x;
    if (cfg_.random_start) {
      const Tensor noise = rand_uniform(x.shape(), rng_, -cfg_.eps, cfg_.eps);
      adv = add(adv, noise);
      project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
    }
    return adv;
  };

  // Single-restart path: no extra forward pass, identical to classic PGD.
  if (restarts == 1) {
    return run_trajectory(model, x, y, start_for_restart(), cfg_);
  }

  // Multi-restart: keep, per example, the iterate with the lowest margin
  // (most adversarial). The per-example copy-back is a batch loop on the
  // pool; the noise draws stay on the caller so the RNG stream is the same
  // for every thread count.
  const auto n = x.dim(0);
  const std::int64_t img = n > 0 ? x.numel() / n : 0;
  Tensor best_adv = x;
  std::vector<float> best(static_cast<std::size_t>(n),
                          std::numeric_limits<float>::infinity());
  for (std::int64_t r = 0; r < restarts; ++r) {
    const Tensor adv = run_trajectory(model, x, y, start_for_restart(), cfg_);
    std::vector<float> m;
    {
      ag::NoGradGuard ng;
      m = margin_loss(model.forward(ag::Var::constant(adv)).value(), y);
    }
    runtime::parallel_for(
        0, n, runtime::grain_for(img),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            const auto u = static_cast<std::size_t>(i);
            if (m[u] < best[u]) {
              best[u] = m[u];
              std::copy_n(adv.data().begin() + i * img, img,
                          best_adv.data().begin() + i * img);
            }
          }
        });
  }
  return best_adv;
}

}  // namespace ibrar::attacks
