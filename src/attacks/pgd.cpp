#include "attacks/pgd.hpp"

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::attacks {

Tensor PGD::perturb(models::TapClassifier& model, const Tensor& x,
                    const std::vector<std::int64_t>& y) {
  AttackModeGuard guard(model);
  Tensor adv = x;
  if (cfg_.random_start) {
    const Tensor noise = rand_uniform(x.shape(), rng_, -cfg_.eps, cfg_.eps);
    adv = add(adv, noise);
    project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }
  for (std::int64_t s = 0; s < cfg_.steps; ++s) {
    const Tensor g = input_gradient(model, adv, y);
    adv = add(adv, mul_scalar(sign(g), cfg_.alpha));
    project_linf(adv, x, cfg_.eps, cfg_.clip_lo, cfg_.clip_hi);
  }
  return adv;
}

}  // namespace ibrar::attacks
