#include "attacks/attack.hpp"

#include <algorithm>
#include <limits>

#include "runtime/parallel_for.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::attacks {

AttackModeGuard::AttackModeGuard(models::TapClassifier& model)
    : model_(model), was_training_(model.training()) {
  model_.set_training(false);
  // Pause parameter gradients: attacks only need d loss / d input, and the
  // weight-gradient GEMMs are the dominant backward cost.
  for (auto& p : model_.parameters()) {
    if (p.node()->requires_grad) {
      p.node()->requires_grad = false;
      paused_.push_back(p.node());
    }
  }
}

AttackModeGuard::~AttackModeGuard() {
  for (auto& n : paused_) n->requires_grad = true;
  model_.set_training(was_training_);
}

Tensor input_gradient(models::TapClassifier& model, const Tensor& x,
                      const std::vector<std::int64_t>& y) {
  ag::Var input = ag::Var::param(x);
  ag::Var loss = ag::cross_entropy(model.forward(input), y);
  loss.backward();
  return input.grad();
}

void project_linf(Tensor& adv, const Tensor& x, float eps, float lo, float hi) {
  auto pa = adv.data();
  const auto px = x.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto u = static_cast<std::size_t>(i);
          const float low = std::max(px[u] - eps, lo);
          const float high = std::min(px[u] + eps, hi);
          pa[u] = std::min(std::max(pa[u], low), high);
        }
      });
}

std::vector<float> margin_loss(const Tensor& logits,
                               const std::vector<std::int64_t>& y) {
  const auto n = logits.dim(0), c = logits.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n));
  runtime::parallel_for(
      0, n, runtime::grain_for(c),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          float best_other = -std::numeric_limits<float>::infinity();
          for (std::int64_t j = 0; j < c; ++j) {
            if (j == y[static_cast<std::size_t>(i)]) continue;
            best_other = std::max(best_other, logits.at(i, j));
          }
          out[static_cast<std::size_t>(i)] =
              logits.at(i, y[static_cast<std::size_t>(i)]) - best_other;
        }
      });
  return out;
}

std::vector<std::int64_t> predict(models::TapClassifier& model, const Tensor& x) {
  ag::NoGradGuard ng;
  const bool was_training = model.training();
  model.set_training(false);
  const Tensor logits = model.forward(ag::Var::constant(x)).value();
  model.set_training(was_training);
  return argmax_rows(logits);
}

double accuracy(models::TapClassifier& model, const Tensor& x,
                const std::vector<std::int64_t>& y) {
  const auto pred = predict(model, x);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == y[i]) ++correct;
  }
  return pred.empty() ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace ibrar::attacks
