#pragma once
// Projected Gradient Descent (Madry et al. 2018): iterated FGSM steps with
// projection onto the Linf eps-ball, optional random start.

#include "attacks/attack.hpp"

namespace ibrar::attacks {

class PGD : public Attack {
 public:
  explicit PGD(AttackConfig cfg) : Attack(cfg) {}
  std::string name() const override {
    return "PGD" + std::to_string(cfg_.steps);
  }
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;
};

}  // namespace ibrar::attacks
