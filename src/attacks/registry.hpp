#pragma once
// String-keyed attack registry and spec parser.
//
// Attacks are addressable by name ("pgd") or by a compact spec string that
// carries the configuration inline:
//
//   spec      := stage ( ("→" | "->") stage )*
//   stage     := name [ ":" kv ( "," kv )* ]
//   kv        := key "=" value
//
//   parse_spec("pgd:steps=20,restarts=5")
//   parse_spec("fgsm→pgd:restarts=3→cw")        // CompositeAttack pipeline
//
// Common keys (all attacks): eps, alpha, steps, restarts, seed,
// random_start (0/1), active_set (0/1), best (auto|last|restart|step).
// Attack-specific keys (rejected on any other attack): decay (mifgsm),
// momentum (nifgsm), c / kappa / lr (cw), p_init (square), overshoot /
// backward_bias (fab), ib_alpha / ib_beta / layers="+"-separated tap indices
// (adaptive, e.g. "adaptive:steps=10,layers=4+5+6").
//
// Multi-stage specs build a CompositeAttack: stages run in sequence over a
// shared per-example success mask, and only the examples the earlier stages
// failed to fool are forwarded to the next stage (AutoAttack-style ensemble
// evaluation with active-set cost).

#include <string>
#include <vector>

#include "attacks/attack.hpp"

namespace ibrar::attacks {

/// Names make() accepts, in registry order (for error messages and sweeps).
const std::vector<std::string>& registered_attacks();

/// Construct a registered attack with the given base config and the
/// attack-specific defaults (CW c=1, Square p_init=0.3, ...). Throws
/// std::invalid_argument for unknown names, listing the registry.
AttackPtr make(const std::string& name, const AttackConfig& cfg = {});

/// Parse a spec string (grammar above) into a single attack or a
/// CompositeAttack. `defaults` seeds every stage's config before the stage's
/// own key=value overrides apply. Throws std::invalid_argument with an
/// actionable message on unknown names, malformed key=value pairs, non-numeric
/// values, or out-of-range budgets (eps outside [0,1], negative alpha/steps,
/// restarts < 1).
AttackPtr parse_spec(const std::string& spec, const AttackConfig& defaults = {});

/// Sequential ensemble with survivor forwarding: stage k only attacks the
/// examples stages 0..k-1 left correctly classified, and every example keeps
/// the adversarial iterate of the stage that first fooled it (survivors keep
/// the last stage's attempt). Per-batch stage statistics are kept for the
/// RobustReport driver.
class CompositeAttack : public Attack {
 public:
  explicit CompositeAttack(std::vector<AttackPtr> stages,
                           AttackConfig cfg = {});

  std::string name() const override;
  Tensor perturb(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y) override;

  struct StageTrace {
    std::string name;
    std::int64_t forwarded = 0;  ///< examples entering the stage
    std::int64_t fooled = 0;     ///< newly misclassified by the stage
  };
  /// Statistics of the most recent perturb() call, one entry per stage.
  const std::vector<StageTrace>& last_trace() const { return trace_; }

  /// Per-example success of the most recent perturb() (1 = some stage fooled
  /// it). The stages already predicted every output, so callers can reuse
  /// this instead of re-forwarding the returned batch.
  const std::vector<std::uint8_t>& last_success() const { return success_; }

  std::size_t num_stages() const { return stages_.size(); }
  Attack& stage(std::size_t i) { return *stages_.at(i); }

 private:
  std::vector<AttackPtr> stages_;
  std::vector<StageTrace> trace_;
  std::vector<std::uint8_t> success_;
};

}  // namespace ibrar::attacks
