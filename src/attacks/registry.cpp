#include "attacks/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>

#include "attacks/adaptive.hpp"
#include "attacks/cw.hpp"
#include "attacks/engine.hpp"
#include "attacks/fab.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/square.hpp"
#include "tensor/ops.hpp"

namespace ibrar::attacks {
namespace {

/// Attack-specific knobs collected from the spec before construction.
struct Extras {
  float decay = 1.0f;          // mifgsm
  float momentum = 1.0f;       // nifgsm
  float c = 1.0f;              // cw
  float kappa = 0.0f;          // cw
  float lr = 0.01f;            // cw
  float p_init = 0.3f;         // square
  float overshoot = 1.05f;     // fab
  float backward_bias = 0.7f;  // fab
  mi::IBObjectiveConfig ib;    // adaptive
};

/// Which attack owns each attack-specific key — so a key on the wrong attack
/// is a hard error instead of a silently ignored no-op.
const char* key_owner(const std::string& key) {
  if (key == "decay") return "mifgsm";
  if (key == "momentum") return "nifgsm";
  if (key == "c" || key == "kappa" || key == "lr") return "cw";
  if (key == "p_init") return "square";
  if (key == "overshoot" || key == "backward_bias") return "fab";
  if (key == "ib_alpha" || key == "ib_beta" || key == "layers") {
    return "adaptive";
  }
  return nullptr;
}

std::string joined_registry() {
  std::string s;
  for (const auto& n : registered_attacks()) {
    if (!s.empty()) s += ", ";
    s += n;
  }
  return s;
}

AttackPtr build(const std::string& name, const AttackConfig& cfg,
                const Extras& ex) {
  if (name == "fgsm") return std::make_unique<FGSM>(cfg);
  if (name == "pgd") return std::make_unique<PGD>(cfg);
  if (name == "mifgsm") return std::make_unique<MIFGSM>(cfg, ex.decay);
  if (name == "nifgsm") return std::make_unique<NIFGSM>(cfg, ex.momentum);
  if (name == "cw") return std::make_unique<CW>(cfg, ex.c, ex.kappa, ex.lr);
  if (name == "square") return std::make_unique<SquareAttack>(cfg, ex.p_init);
  if (name == "fab")
    return std::make_unique<FAB>(cfg, ex.overshoot, ex.backward_bias);
  if (name == "adaptive") return std::make_unique<AdaptivePGD>(cfg, ex.ib);
  throw std::invalid_argument("attacks::make: unknown attack '" + name +
                              "' — registered attacks are: " +
                              joined_registry());
}

float parse_float(const std::string& stage, const std::string& key,
                  const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const float v = std::strtof(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || value.empty()) {
    throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                "': value for '" + key +
                                "' is not a number: '" + value + "'");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                "': value for '" + key +
                                "' overflows float: '" + value + "'");
  }
  return v;
}

std::int64_t parse_int(const std::string& stage, const std::string& key,
                       const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value.empty()) {
    throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                "': value for '" + key +
                                "' is not an integer: '" + value + "'");
  }
  if (errno == ERANGE) {
    throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                "': value for '" + key +
                                "' overflows int64: '" + value + "'");
  }
  return static_cast<std::int64_t>(v);
}

BestMode parse_best(const std::string& stage, const std::string& value) {
  if (value == "auto") return BestMode::kAuto;
  if (value == "last") return BestMode::kLastIterate;
  if (value == "restart") return BestMode::kPerRestart;
  if (value == "step") return BestMode::kPerStep;
  throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                              "': best=" + value +
                              " — expected auto|last|restart|step");
}

/// Taps list for adaptive: "+"-separated indices, e.g. layers=4+5+6.
std::vector<std::size_t> parse_layers(const std::string& stage,
                                      const std::string& value) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const auto plus = value.find('+', pos);
    const std::string tok =
        value.substr(pos, plus == std::string::npos ? value.size() - pos
                                                    : plus - pos);
    const auto idx = parse_int(stage, "layers", tok);
    if (idx < 0) {
      throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                  "': layers indices must be >= 0");
    }
    out.push_back(static_cast<std::size_t>(idx));
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }
  return out;
}

/// One "name:key=value,..." stage -> a constructed attack.
AttackPtr parse_stage(const std::string& stage, const AttackConfig& defaults) {
  const auto colon = stage.find(':');
  const std::string name = stage.substr(0, colon);
  if (name.empty()) {
    throw std::invalid_argument(
        "attacks::parse_spec: empty attack name in spec stage '" + stage +
        "' — registered attacks are: " + joined_registry());
  }
  const auto& reg = registered_attacks();
  if (std::find(reg.begin(), reg.end(), name) == reg.end()) {
    throw std::invalid_argument("attacks::parse_spec: unknown attack '" +
                                name + "' — registered attacks are: " +
                                joined_registry());
  }

  AttackConfig cfg = defaults;
  Extras ex;
  std::string rest = colon == std::string::npos ? "" : stage.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string kv = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
      throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                  "': malformed option '" + kv +
                                  "' — expected key=value");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    // FGSM is single-step by definition (one sign step of size eps), so the
    // iteration keys would be silently discarded — reject them like any
    // other silently-ignored key.
    if (name == "fgsm" && (key == "steps" || key == "restarts" ||
                           key == "alpha" || key == "random_start")) {
      throw std::invalid_argument(
          "attacks::parse_spec: stage '" + stage + "': fgsm ignores '" + key +
          "' (it takes exactly one sign step of size eps from the clean "
          "point) — use pgd for iterated/restarted attacks");
    }
    if (key == "eps") {
      cfg.eps = parse_float(stage, key, value);
      // Negated form so NaN (which fails every comparison) is rejected too.
      if (!(cfg.eps >= 0.0f && cfg.eps <= 1.0f)) {
        throw std::invalid_argument(
            "attacks::parse_spec: stage '" + stage + "': eps=" + value +
            " out of range — Linf budgets are fractions of the [0,1] pixel "
            "range (paper default 8/255 ≈ 0.0314)");
      }
    } else if (key == "alpha") {
      cfg.alpha = parse_float(stage, key, value);
      if (!(cfg.alpha >= 0.0f && cfg.alpha <= 1.0f)) {
        throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                    "': alpha must be in [0, 1]");
      }
    } else if (key == "steps") {
      cfg.steps = parse_int(stage, key, value);
      if (cfg.steps < 0) {
        throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                    "': steps must be >= 0");
      }
    } else if (key == "restarts") {
      cfg.restarts = parse_int(stage, key, value);
      if (cfg.restarts < 1) {
        throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                    "': restarts must be >= 1");
      }
    } else if (key == "seed") {
      cfg.seed = static_cast<std::uint64_t>(parse_int(stage, key, value));
    } else if (key == "random_start") {
      cfg.random_start = parse_int(stage, key, value) != 0;
    } else if (key == "active_set") {
      cfg.active_set = parse_int(stage, key, value) != 0;
    } else if (key == "best") {
      cfg.track_best = parse_best(stage, value);
    } else if (const char* owner = key_owner(key)) {
      if (name != owner) {
        throw std::invalid_argument("attacks::parse_spec: stage '" + stage +
                                    "': key '" + key + "' belongs to '" +
                                    owner + "', not '" + name +
                                    "' — it would be silently ignored");
      }
      if (key == "decay") ex.decay = parse_float(stage, key, value);
      else if (key == "momentum") ex.momentum = parse_float(stage, key, value);
      else if (key == "c") ex.c = parse_float(stage, key, value);
      else if (key == "kappa") ex.kappa = parse_float(stage, key, value);
      else if (key == "lr") ex.lr = parse_float(stage, key, value);
      else if (key == "p_init") ex.p_init = parse_float(stage, key, value);
      else if (key == "overshoot") ex.overshoot = parse_float(stage, key, value);
      else if (key == "backward_bias")
        ex.backward_bias = parse_float(stage, key, value);
      else if (key == "ib_alpha") ex.ib.alpha = parse_float(stage, key, value);
      else if (key == "ib_beta") ex.ib.beta = parse_float(stage, key, value);
      else if (key == "layers") ex.ib.layer_indices = parse_layers(stage, value);
    } else {
      throw std::invalid_argument(
          "attacks::parse_spec: stage '" + stage + "': unknown key '" + key +
          "' — common keys: eps, alpha, steps, restarts, seed, random_start, "
          "active_set, best; attack-specific: decay (mifgsm), momentum "
          "(nifgsm), c/kappa/lr (cw), p_init (square), "
          "overshoot/backward_bias (fab), ib_alpha/ib_beta/layers (adaptive)");
    }
  }
  // Batch-coupled compositions reject the active set up front, with a spec-
  // level message (the engine would throw the same complaint at perturb time).
  if (cfg.active_set &&
      (name == "mifgsm" || name == "nifgsm" || name == "adaptive")) {
    throw std::invalid_argument(
        "attacks::parse_spec: stage '" + stage + "': " + name +
        " couples examples through the batch (mean-L1 gradient normalization "
        "or MI estimators), so active_set=1 would change survivors' "
        "trajectories — drop active_set for this stage");
  }
  return build(name, cfg, ex);
}

/// Split on "→" (UTF-8) or "->" composite separators.
std::vector<std::string> split_stages(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto arrow_utf8 = spec.find("\xe2\x86\x92", pos);
    const auto arrow_ascii = spec.find("->", pos);
    const auto cut = std::min(arrow_utf8, arrow_ascii);
    if (cut == std::string::npos) {
      out.push_back(spec.substr(pos));
      break;
    }
    out.push_back(spec.substr(pos, cut - pos));
    pos = cut + (cut == arrow_utf8 ? 3 : 2);
  }
  return out;
}

}  // namespace

const std::vector<std::string>& registered_attacks() {
  static const std::vector<std::string> names = {
      "fgsm", "pgd", "mifgsm", "nifgsm", "cw", "square", "fab", "adaptive"};
  return names;
}

AttackPtr make(const std::string& name, const AttackConfig& cfg) {
  return build(name, cfg, Extras{});
}

AttackPtr parse_spec(const std::string& spec, const AttackConfig& defaults) {
  if (spec.empty()) {
    throw std::invalid_argument(
        "attacks::parse_spec: empty spec — expected e.g. \"pgd:steps=20\" or "
        "\"fgsm→pgd→cw\"");
  }
  auto stages = split_stages(spec);
  if (stages.size() == 1) return parse_stage(stages.front(), defaults);
  std::vector<AttackPtr> built;
  built.reserve(stages.size());
  for (const auto& s : stages) built.push_back(parse_stage(s, defaults));
  return std::make_unique<CompositeAttack>(std::move(built), defaults);
}

CompositeAttack::CompositeAttack(std::vector<AttackPtr> stages,
                                 AttackConfig cfg)
    : Attack(cfg), stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw std::invalid_argument("CompositeAttack: needs at least one stage");
  }
}

std::string CompositeAttack::name() const {
  std::string s;
  for (const auto& a : stages_) {
    if (!s.empty()) s += "\xe2\x86\x92";
    s += a->name();
  }
  return s;
}

Tensor CompositeAttack::perturb(models::TapClassifier& model, const Tensor& x,
                                const std::vector<std::int64_t>& y) {
  const auto n = x.dim(0);
  trace_.clear();
  trace_.reserve(stages_.size());
  success_.assign(static_cast<std::size_t>(n), 0);

  Tensor out = x;
  engine::ActiveSet remaining(n);
  for (const auto& stage : stages_) {
    StageTrace t;
    t.name = stage->name();
    t.forwarded = remaining.size();
    if (remaining.empty()) {
      trace_.push_back(std::move(t));
      continue;
    }
    const Tensor x_sub = take_rows(x, remaining.rows());
    const auto y_sub = engine::subset(y, remaining.rows());
    const Tensor adv = stage->perturb(model, x_sub, y_sub);
    // Every forwarded example takes this stage's iterate; survivors get
    // overwritten by the next stage they are forwarded to.
    put_rows(out, remaining.rows(), adv);
    const auto pred = predict(model, adv);
    std::vector<char> keep(pred.size());
    for (std::size_t i = 0; i < pred.size(); ++i) {
      keep[i] = pred[i] == y_sub[i];
      if (!keep[i]) {
        ++t.fooled;
        success_[static_cast<std::size_t>(remaining.rows()[i])] = 1;
      }
    }
    remaining.retain(keep);
    trace_.push_back(std::move(t));
  }
  return out;
}

}  // namespace ibrar::attacks
