#include "models/wideresnet.hpp"

#include <utility>

#include "autograd/var.hpp"

namespace ibrar::models {

PreActBlock::PreActBlock(std::int64_t in_c, std::int64_t out_c,
                         std::int64_t stride, Rng& rng) {
  bn1_ = std::make_shared<nn::BatchNorm2d>(in_c);
  conv1_ = std::make_shared<nn::Conv2d>(in_c, out_c, rng,
                                        Conv2dSpec{3, stride, 1}, false);
  bn2_ = std::make_shared<nn::BatchNorm2d>(out_c);
  conv2_ = std::make_shared<nn::Conv2d>(out_c, out_c, rng, Conv2dSpec{3, 1, 1},
                                        false);
  register_module("bn1", bn1_);
  register_module("conv1", conv1_);
  register_module("bn2", bn2_);
  register_module("conv2", conv2_);
  if (stride != 1 || in_c != out_c) {
    proj_ = std::make_shared<nn::Conv2d>(in_c, out_c, rng,
                                         Conv2dSpec{1, stride, 0}, false);
    register_module("proj", proj_);
  }
}

ag::Var PreActBlock::forward(const ag::Var& x) {
  ag::Var pre = ag::relu(bn1_->forward(x));
  ag::Var h = conv1_->forward(pre);
  h = conv2_->forward(ag::relu(bn2_->forward(h)));
  // WRN applies the projection to the pre-activated input.
  ag::Var skip = proj_ ? proj_->forward(pre) : x;
  return ag::add(h, skip);
}

ag::Var PreActBlock::eval_forward(const ag::Var& x) const {
  ag::Var pre = ag::relu(bn1_->eval_forward(x));
  ag::Var h = conv1_->eval_forward(pre);
  h = conv2_->eval_forward(ag::relu(bn2_->eval_forward(h)));
  ag::Var skip = proj_ ? proj_->eval_forward(pre) : x;
  return ag::add(h, skip);
}

void PreActBlock::prepare_fused_eval() {
  if (fconv1_) return;
  fbn1_ = bn1_->folded();
  fbn2_ = bn2_->folded();
  // Pre-activation order: BN runs before each conv, so the convs themselves
  // carry no BN epilogue; conv2 fuses the residual add (no relu — WRN blocks
  // end on the plain sum).
  fconv1_ = std::make_unique<ConvEvalPlan>(conv1_->weight_value(), nullptr,
                                           conv1_->spec(), FoldedBn{},
                                           /*relu=*/false);
  fconv2_ = std::make_unique<ConvEvalPlan>(conv2_->weight_value(), nullptr,
                                           conv2_->spec(), FoldedBn{},
                                           /*relu=*/false);
  if (proj_) {
    fproj_ = std::make_unique<ConvEvalPlan>(proj_->weight_value(), nullptr,
                                            proj_->spec(), FoldedBn{},
                                            /*relu=*/false);
  }
}

Tensor PreActBlock::fused_eval(const Tensor& x) const {
  const Tensor pre = batch_norm_relu_eval(x, fbn1_, /*relu=*/true);
  Tensor h = fconv1_->run(pre);
  h = batch_norm_relu_eval(h, fbn2_, /*relu=*/true);
  const Tensor skip = fproj_ ? fproj_->run(pre) : x;
  return fconv2_->run(h, &skip);  // add(conv2(h), skip) in the epilogue
}

MiniWRN::MiniWRN(const WRNConfig& cfg, Rng& rng) : cfg_(cfg) {
  widths_ = {cfg_.base_width * cfg_.widen, cfg_.base_width * cfg_.widen * 2,
             cfg_.base_width * cfg_.widen * 4};
  stem_ = std::make_shared<nn::Conv2d>(cfg_.in_channels, cfg_.base_width, rng,
                                       Conv2dSpec{3, 1, 1}, false);
  register_module("stem", stem_);

  std::int64_t in_c = cfg_.base_width;
  for (std::size_t g = 0; g < 3; ++g) {
    auto group = std::make_shared<nn::Sequential>();
    const std::int64_t out_c = widths_[g];
    const std::int64_t stride0 = g == 0 ? 1 : 2;  // 16 -> 16 -> 8 -> 4
    std::vector<std::shared_ptr<PreActBlock>> typed;
    for (std::int64_t b = 0; b < cfg_.blocks_per_group; ++b) {
      auto block = std::make_shared<PreActBlock>(b == 0 ? in_c : out_c, out_c,
                                                 b == 0 ? stride0 : 1, rng);
      typed.push_back(block);
      group->push_back(std::move(block));
    }
    register_module("group" + std::to_string(g + 1), group);
    groups_.push_back(std::move(group));
    group_blocks_.push_back(std::move(typed));
    in_c = out_c;
  }

  final_bn_ = std::make_shared<nn::BatchNorm2d>(widths_.back());
  head_ = std::make_shared<nn::Linear>(widths_.back(), cfg_.num_classes, rng);
  register_module("final_bn", final_bn_);
  register_module("head", head_);
  tap_names_ = {"group1", "group2", "group3", "gap"};
}

TapsOutput MiniWRN::forward_with_taps(const ag::Var& x) {
  if (!training()) return eval_forward_with_taps(x);
  TapsOutput out;
  ag::Var h = stem_->forward(x);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    h = groups_[g]->forward(h);
    if (g == 2) {
      h = ag::relu(final_bn_->forward(h));
      h = apply_channel_mask(h);
    }
    out.taps.push_back(h);
  }
  h = ag::global_avg_pool(h);
  h = maybe_noise(h);
  out.taps.push_back(h);
  out.logits = head_->forward(h);
  return out;
}

TapsOutput MiniWRN::eval_forward_with_taps(const ag::Var& x) const {
  if (fstem_ != nullptr && !ag::grad_enabled()) {
    return fused_eval_with_taps(x.value());
  }
  TapsOutput out;
  ag::Var h = stem_->eval_forward(x);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    h = groups_[g]->eval_forward(h);
    if (g == 2) {
      h = ag::relu(final_bn_->eval_forward(h));
      h = apply_channel_mask(h);
    }
    out.taps.push_back(h);
  }
  h = ag::global_avg_pool(h);
  out.taps.push_back(h);
  out.logits = head_->eval_forward(h);
  return out;
}

void MiniWRN::prepare_fused_eval() {
  if (fstem_ != nullptr || !fused_eval_enabled()) return;
  for (auto& group : group_blocks_) {
    for (auto& block : group) block->prepare_fused_eval();
  }
  ffinal_bn_ = final_bn_->folded();
  // Built last: fstem_ doubles as the "plans ready" flag the eval gate reads.
  fstem_ = std::make_unique<ConvEvalPlan>(stem_->weight_value(), nullptr,
                                          stem_->spec(), FoldedBn{},
                                          /*relu=*/false);
}

TapsOutput MiniWRN::fused_eval_with_taps(const Tensor& x) const {
  TapsOutput out;
  Tensor h = fstem_->run(x);
  for (std::size_t g = 0; g < group_blocks_.size(); ++g) {
    for (const auto& block : group_blocks_[g]) h = block->fused_eval(h);
    if (g == 2) {
      h = batch_norm_relu_eval(h, ffinal_bn_, /*relu=*/true);
      h = apply_channel_mask_eval(h);
    }
    out.taps.push_back(ag::Var::constant(h));
  }
  const Tensor gap = global_avg_pool(h);
  ag::Var hv = ag::Var::constant(gap);
  out.taps.push_back(hv);
  out.logits = head_->eval_forward(hv);
  return out;
}

}  // namespace ibrar::models
