#include "models/wideresnet.hpp"

namespace ibrar::models {

PreActBlock::PreActBlock(std::int64_t in_c, std::int64_t out_c,
                         std::int64_t stride, Rng& rng) {
  bn1_ = std::make_shared<nn::BatchNorm2d>(in_c);
  conv1_ = std::make_shared<nn::Conv2d>(in_c, out_c, rng,
                                        Conv2dSpec{3, stride, 1}, false);
  bn2_ = std::make_shared<nn::BatchNorm2d>(out_c);
  conv2_ = std::make_shared<nn::Conv2d>(out_c, out_c, rng, Conv2dSpec{3, 1, 1},
                                        false);
  register_module("bn1", bn1_);
  register_module("conv1", conv1_);
  register_module("bn2", bn2_);
  register_module("conv2", conv2_);
  if (stride != 1 || in_c != out_c) {
    proj_ = std::make_shared<nn::Conv2d>(in_c, out_c, rng,
                                         Conv2dSpec{1, stride, 0}, false);
    register_module("proj", proj_);
  }
}

ag::Var PreActBlock::forward(const ag::Var& x) {
  ag::Var pre = ag::relu(bn1_->forward(x));
  ag::Var h = conv1_->forward(pre);
  h = conv2_->forward(ag::relu(bn2_->forward(h)));
  // WRN applies the projection to the pre-activated input.
  ag::Var skip = proj_ ? proj_->forward(pre) : x;
  return ag::add(h, skip);
}

ag::Var PreActBlock::eval_forward(const ag::Var& x) const {
  ag::Var pre = ag::relu(bn1_->eval_forward(x));
  ag::Var h = conv1_->eval_forward(pre);
  h = conv2_->eval_forward(ag::relu(bn2_->eval_forward(h)));
  ag::Var skip = proj_ ? proj_->eval_forward(pre) : x;
  return ag::add(h, skip);
}

MiniWRN::MiniWRN(const WRNConfig& cfg, Rng& rng) : cfg_(cfg) {
  widths_ = {cfg_.base_width * cfg_.widen, cfg_.base_width * cfg_.widen * 2,
             cfg_.base_width * cfg_.widen * 4};
  stem_ = std::make_shared<nn::Conv2d>(cfg_.in_channels, cfg_.base_width, rng,
                                       Conv2dSpec{3, 1, 1}, false);
  register_module("stem", stem_);

  std::int64_t in_c = cfg_.base_width;
  for (std::size_t g = 0; g < 3; ++g) {
    auto group = std::make_shared<nn::Sequential>();
    const std::int64_t out_c = widths_[g];
    const std::int64_t stride0 = g == 0 ? 1 : 2;  // 16 -> 16 -> 8 -> 4
    for (std::int64_t b = 0; b < cfg_.blocks_per_group; ++b) {
      group->push_back(std::make_shared<PreActBlock>(b == 0 ? in_c : out_c,
                                                     out_c,
                                                     b == 0 ? stride0 : 1, rng));
    }
    register_module("group" + std::to_string(g + 1), group);
    groups_.push_back(std::move(group));
    in_c = out_c;
  }

  final_bn_ = std::make_shared<nn::BatchNorm2d>(widths_.back());
  head_ = std::make_shared<nn::Linear>(widths_.back(), cfg_.num_classes, rng);
  register_module("final_bn", final_bn_);
  register_module("head", head_);
  tap_names_ = {"group1", "group2", "group3", "gap"};
}

TapsOutput MiniWRN::forward_with_taps(const ag::Var& x) {
  if (!training()) return eval_forward_with_taps(x);
  TapsOutput out;
  ag::Var h = stem_->forward(x);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    h = groups_[g]->forward(h);
    if (g == 2) {
      h = ag::relu(final_bn_->forward(h));
      h = apply_channel_mask(h);
    }
    out.taps.push_back(h);
  }
  h = ag::global_avg_pool(h);
  h = maybe_noise(h);
  out.taps.push_back(h);
  out.logits = head_->forward(h);
  return out;
}

TapsOutput MiniWRN::eval_forward_with_taps(const ag::Var& x) const {
  TapsOutput out;
  ag::Var h = stem_->eval_forward(x);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    h = groups_[g]->eval_forward(h);
    if (g == 2) {
      h = ag::relu(final_bn_->eval_forward(h));
      h = apply_channel_mask(h);
    }
    out.taps.push_back(h);
  }
  h = ag::global_avg_pool(h);
  out.taps.push_back(h);
  out.logits = head_->eval_forward(h);
  return out;
}

}  // namespace ibrar::models
