#include "models/registry.hpp"

#include <stdexcept>

#include "models/mlp.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "models/wideresnet.hpp"

namespace ibrar::models {

TapClassifierPtr make_model(const ModelSpec& spec, Rng& rng) {
  if (spec.name == "vgg16") {
    VGGConfig cfg;
    cfg.num_classes = spec.num_classes;
    cfg.image_size = spec.image_size;
    cfg.in_channels = spec.in_channels;
    return std::make_shared<MiniVGG>(cfg, rng);
  }
  if (spec.name == "resnet18") {
    ResNetConfig cfg;
    cfg.num_classes = spec.num_classes;
    cfg.image_size = spec.image_size;
    cfg.in_channels = spec.in_channels;
    return std::make_shared<MiniResNet>(cfg, rng);
  }
  if (spec.name == "wrn28") {
    WRNConfig cfg;
    cfg.num_classes = spec.num_classes;
    cfg.image_size = spec.image_size;
    cfg.in_channels = spec.in_channels;
    return std::make_shared<MiniWRN>(cfg, rng);
  }
  if (spec.name == "mlp") {
    MLPConfig cfg;
    cfg.in_features = spec.in_channels * spec.image_size * spec.image_size;
    cfg.num_classes = spec.num_classes;
    return std::make_shared<MLP>(cfg, rng);
  }
  throw std::invalid_argument("make_model: unknown model " + spec.name);
}

std::vector<std::string> default_robust_layers(const std::string& model_name) {
  if (model_name == "vgg16") return {"conv_block5", "fc1", "fc2"};
  if (model_name == "resnet18") return {"stage4", "gap"};
  if (model_name == "wrn28") return {"group3", "gap"};
  if (model_name == "mlp") return {"fc2"};
  throw std::invalid_argument("default_robust_layers: unknown model " + model_name);
}

}  // namespace ibrar::models
