#pragma once
// MiniWRN: width-reduced WideResNet-28-10 topology — pre-activation residual
// blocks in three groups with a widening factor, BN-ReLU before the head.

#include "models/classifier.hpp"

namespace ibrar::models {

struct WRNConfig {
  std::int64_t base_width = 8;      ///< group widths = base * widen * {1,2,4}
  std::int64_t widen = 2;
  std::int64_t blocks_per_group = 1;
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t in_channels = 3;
};

/// Pre-activation residual block: BN-ReLU-conv-BN-ReLU-conv (+skip).
class PreActBlock : public nn::Module {
 public:
  PreActBlock(std::int64_t in_c, std::int64_t out_c, std::int64_t stride, Rng& rng);
  ag::Var eval_forward(const ag::Var& x) const override;
  ag::Var forward(const ag::Var& x) override;

  /// Lower to fused plans: the pre-activation BNs become one-pass
  /// batch_norm_relu_eval folds, conv2 fuses the residual add.
  void prepare_fused_eval();
  bool fused_ready() const { return fconv1_ != nullptr; }
  Tensor fused_eval(const Tensor& x) const;

 private:
  std::shared_ptr<nn::BatchNorm2d> bn1_;
  std::shared_ptr<nn::Conv2d> conv1_;
  std::shared_ptr<nn::BatchNorm2d> bn2_;
  std::shared_ptr<nn::Conv2d> conv2_;
  std::shared_ptr<nn::Conv2d> proj_;
  FoldedBn fbn1_;
  FoldedBn fbn2_;
  std::unique_ptr<ConvEvalPlan> fconv1_;
  std::unique_ptr<ConvEvalPlan> fconv2_;
  std::unique_ptr<ConvEvalPlan> fproj_;
};

class MiniWRN : public TapClassifier {
 public:
  MiniWRN(const WRNConfig& cfg, Rng& rng);

  TapsOutput forward_with_taps(const ag::Var& x) override;
  TapsOutput eval_forward_with_taps(const ag::Var& x) const override;
  void prepare_fused_eval() override;
  bool fused_eval_ready() const override { return fstem_ != nullptr; }
  const std::vector<std::string>& tap_names() const override { return tap_names_; }
  std::int64_t last_conv_channels() const override { return widths_.back(); }
  std::int64_t num_classes() const override { return cfg_.num_classes; }
  std::size_t last_conv_tap_index() const override { return 2; }

 private:
  TapsOutput fused_eval_with_taps(const Tensor& x) const;

  WRNConfig cfg_;
  std::vector<std::int64_t> widths_;
  std::shared_ptr<nn::Conv2d> stem_;
  std::vector<std::shared_ptr<nn::Sequential>> groups_;
  std::vector<std::vector<std::shared_ptr<PreActBlock>>> group_blocks_;
  std::shared_ptr<nn::BatchNorm2d> final_bn_;
  FoldedBn ffinal_bn_;
  std::unique_ptr<ConvEvalPlan> fstem_;  ///< null until prepare_fused_eval()
  std::shared_ptr<nn::Linear> head_;
  std::vector<std::string> tap_names_;
};

}  // namespace ibrar::models
