#pragma once
// Small MLP classifier — used by unit/integration tests and the quickstart
// example where a convolutional model would be overkill.

#include "models/classifier.hpp"

namespace ibrar::models {

struct MLPConfig {
  std::int64_t in_features = 48;
  std::vector<std::int64_t> hidden = {32, 32};
  std::int64_t num_classes = 10;
};

class MLP : public TapClassifier {
 public:
  MLP(const MLPConfig& cfg, Rng& rng);

  TapsOutput forward_with_taps(const ag::Var& x) override;
  TapsOutput eval_forward_with_taps(const ag::Var& x) const override;
  const std::vector<std::string>& tap_names() const override { return tap_names_; }
  /// MLP has no conv layer; the mask concept maps onto the last hidden layer.
  std::int64_t last_conv_channels() const override { return cfg_.hidden.back(); }
  std::int64_t num_classes() const override { return cfg_.num_classes; }
  std::size_t last_conv_tap_index() const override { return tap_names_.size() - 1; }

 private:
  MLPConfig cfg_;
  std::vector<std::shared_ptr<nn::Linear>> layers_;
  std::shared_ptr<nn::Linear> head_;
  std::vector<std::string> tap_names_;
};

}  // namespace ibrar::models
