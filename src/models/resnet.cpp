#include "models/resnet.hpp"

#include <stdexcept>
#include <utility>

#include "autograd/var.hpp"

namespace ibrar::models {

BasicBlock::BasicBlock(std::int64_t in_c, std::int64_t out_c, std::int64_t stride,
                       Rng& rng) {
  conv1_ = std::make_shared<nn::Conv2d>(in_c, out_c, rng,
                                        Conv2dSpec{3, stride, 1}, false);
  bn1_ = std::make_shared<nn::BatchNorm2d>(out_c);
  conv2_ = std::make_shared<nn::Conv2d>(out_c, out_c, rng, Conv2dSpec{3, 1, 1},
                                        false);
  bn2_ = std::make_shared<nn::BatchNorm2d>(out_c);
  register_module("conv1", conv1_);
  register_module("bn1", bn1_);
  register_module("conv2", conv2_);
  register_module("bn2", bn2_);
  if (stride != 1 || in_c != out_c) {
    proj_ = std::make_shared<nn::Conv2d>(in_c, out_c, rng,
                                         Conv2dSpec{1, stride, 0}, false);
    proj_bn_ = std::make_shared<nn::BatchNorm2d>(out_c);
    register_module("proj", proj_);
    register_module("proj_bn", proj_bn_);
  }
}

ag::Var BasicBlock::forward(const ag::Var& x) {
  ag::Var h = ag::relu(bn1_->forward(conv1_->forward(x)));
  h = bn2_->forward(conv2_->forward(h));
  ag::Var skip = proj_ ? proj_bn_->forward(proj_->forward(x)) : x;
  return ag::relu(ag::add(h, skip));
}

ag::Var BasicBlock::eval_forward(const ag::Var& x) const {
  ag::Var h = ag::relu(bn1_->eval_forward(conv1_->eval_forward(x)));
  h = bn2_->eval_forward(conv2_->eval_forward(h));
  ag::Var skip = proj_ ? proj_bn_->eval_forward(proj_->eval_forward(x)) : x;
  return ag::relu(ag::add(h, skip));
}

void BasicBlock::prepare_fused_eval() {
  if (fconv1_) return;
  fconv1_ = std::make_unique<ConvEvalPlan>(conv1_->weight_value(), nullptr,
                                           conv1_->spec(), bn1_->folded(),
                                           /*relu=*/true);
  fconv2_ = std::make_unique<ConvEvalPlan>(conv2_->weight_value(), nullptr,
                                           conv2_->spec(), bn2_->folded(),
                                           /*relu=*/true);
  if (proj_) {
    fproj_ = std::make_unique<ConvEvalPlan>(proj_->weight_value(), nullptr,
                                            proj_->spec(), proj_bn_->folded(),
                                            /*relu=*/false);
  }
}

Tensor BasicBlock::fused_eval(const Tensor& x) const {
  Tensor h = fconv1_->run(x);                       // relu(bn1(conv1(x)))
  const Tensor skip = fproj_ ? fproj_->run(x) : x;  // proj_bn(proj(x)) | x
  // conv2+bn2 with the residual add and final relu fused into the epilogue:
  // relu(add(bn2(conv2(h)), skip)) in the reference element order.
  return fconv2_->run(h, &skip);
}

MiniResNet::MiniResNet(const ResNetConfig& cfg, Rng& rng) : cfg_(cfg) {
  if (cfg_.channels.size() != 4) {
    throw std::invalid_argument("MiniResNet: exactly 4 stages");
  }
  stem_ = std::make_shared<nn::Conv2d>(cfg_.in_channels, cfg_.channels[0], rng,
                                       Conv2dSpec{3, 1, 1}, false);
  stem_bn_ = std::make_shared<nn::BatchNorm2d>(cfg_.channels[0]);
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);

  std::int64_t in_c = cfg_.channels[0];
  for (std::size_t s = 0; s < 4; ++s) {
    auto stage = std::make_shared<nn::Sequential>();
    const std::int64_t out_c = cfg_.channels[s];
    // Downsample at stages 2-4 (16 -> 8 -> 4 -> 2), as ResNet-18 does from
    // its second stage onward.
    const std::int64_t stride0 = s == 0 ? 1 : 2;
    std::vector<std::shared_ptr<BasicBlock>> typed;
    for (std::int64_t b = 0; b < cfg_.blocks_per_stage; ++b) {
      auto block = std::make_shared<BasicBlock>(b == 0 ? in_c : out_c, out_c,
                                                b == 0 ? stride0 : 1, rng);
      typed.push_back(block);
      stage->push_back(std::move(block));
    }
    register_module("stage" + std::to_string(s + 1), stage);
    stages_.push_back(std::move(stage));
    stage_blocks_.push_back(std::move(typed));
    in_c = out_c;
  }

  head_ = std::make_shared<nn::Linear>(cfg_.channels.back(), cfg_.num_classes, rng);
  register_module("head", head_);
  tap_names_ = {"stage1", "stage2", "stage3", "stage4", "gap"};
}

TapsOutput MiniResNet::forward_with_taps(const ag::Var& x) {
  if (!training()) return eval_forward_with_taps(x);
  TapsOutput out;
  ag::Var h = ag::relu(stem_bn_->forward(stem_->forward(x)));
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    h = stages_[s]->forward(h);
    if (s == 3) h = apply_channel_mask(h);
    out.taps.push_back(h);
  }
  h = ag::global_avg_pool(h);
  h = maybe_noise(h);
  out.taps.push_back(h);  // gap features
  out.logits = head_->forward(h);
  return out;
}

TapsOutput MiniResNet::eval_forward_with_taps(const ag::Var& x) const {
  if (fstem_ != nullptr && !ag::grad_enabled()) {
    return fused_eval_with_taps(x.value());
  }
  TapsOutput out;
  ag::Var h = ag::relu(stem_bn_->eval_forward(stem_->eval_forward(x)));
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    h = stages_[s]->eval_forward(h);
    if (s == 3) h = apply_channel_mask(h);
    out.taps.push_back(h);
  }
  h = ag::global_avg_pool(h);
  out.taps.push_back(h);  // gap features
  out.logits = head_->eval_forward(h);
  return out;
}

void MiniResNet::prepare_fused_eval() {
  if (fstem_ != nullptr || !fused_eval_enabled()) return;
  for (auto& stage : stage_blocks_) {
    for (auto& block : stage) block->prepare_fused_eval();
  }
  // Built last: fstem_ doubles as the "plans ready" flag the eval gate reads.
  fstem_ = std::make_unique<ConvEvalPlan>(stem_->weight_value(), nullptr,
                                          stem_->spec(), stem_bn_->folded(),
                                          /*relu=*/true);
}

TapsOutput MiniResNet::fused_eval_with_taps(const Tensor& x) const {
  TapsOutput out;
  Tensor h = fstem_->run(x);  // relu(stem_bn(stem(x)))
  for (std::size_t s = 0; s < stage_blocks_.size(); ++s) {
    for (const auto& block : stage_blocks_[s]) h = block->fused_eval(h);
    if (s == 3) h = apply_channel_mask_eval(h);
    out.taps.push_back(ag::Var::constant(h));
  }
  const Tensor gap = global_avg_pool(h);
  ag::Var hv = ag::Var::constant(gap);
  out.taps.push_back(hv);  // gap features
  out.logits = head_->eval_forward(hv);
  return out;
}

}  // namespace ibrar::models
