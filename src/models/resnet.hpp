#pragma once
// MiniResNet: a width/depth-reduced ResNet-18 topology (stem + 4 residual
// stages + global average pool + linear head) for 16x16 RGB inputs.

#include "models/classifier.hpp"

namespace ibrar::models {

struct ResNetConfig {
  std::vector<std::int64_t> channels = {12, 16, 24, 32};  ///< per stage
  std::int64_t blocks_per_stage = 1;
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t in_channels = 3;
};

/// Post-activation basic residual block: conv-bn-relu-conv-bn (+skip) -relu.
class BasicBlock : public nn::Module {
 public:
  BasicBlock(std::int64_t in_c, std::int64_t out_c, std::int64_t stride, Rng& rng);
  ag::Var forward(const ag::Var& x) override;
  ag::Var eval_forward(const ag::Var& x) const override;

  /// Lower the block to fused plans: conv1+bn1+relu, proj+proj_bn, and
  /// conv2+bn2 with the residual add and final relu in its epilogue.
  void prepare_fused_eval();
  bool fused_ready() const { return fconv1_ != nullptr; }
  Tensor fused_eval(const Tensor& x) const;

 private:
  std::shared_ptr<nn::Conv2d> conv1_;
  std::shared_ptr<nn::BatchNorm2d> bn1_;
  std::shared_ptr<nn::Conv2d> conv2_;
  std::shared_ptr<nn::BatchNorm2d> bn2_;
  std::shared_ptr<nn::Conv2d> proj_;       ///< 1x1 shortcut when shape changes
  std::shared_ptr<nn::BatchNorm2d> proj_bn_;
  std::unique_ptr<ConvEvalPlan> fconv1_;
  std::unique_ptr<ConvEvalPlan> fconv2_;
  std::unique_ptr<ConvEvalPlan> fproj_;
};

class MiniResNet : public TapClassifier {
 public:
  MiniResNet(const ResNetConfig& cfg, Rng& rng);

  TapsOutput forward_with_taps(const ag::Var& x) override;
  TapsOutput eval_forward_with_taps(const ag::Var& x) const override;
  void prepare_fused_eval() override;
  bool fused_eval_ready() const override { return fstem_ != nullptr; }
  const std::vector<std::string>& tap_names() const override { return tap_names_; }
  std::int64_t last_conv_channels() const override { return cfg_.channels.back(); }
  std::int64_t num_classes() const override { return cfg_.num_classes; }
  std::size_t last_conv_tap_index() const override { return 3; }

  const ResNetConfig& config() const { return cfg_; }

 private:
  TapsOutput fused_eval_with_taps(const Tensor& x) const;

  ResNetConfig cfg_;
  std::shared_ptr<nn::Conv2d> stem_;
  std::shared_ptr<nn::BatchNorm2d> stem_bn_;
  std::vector<std::shared_ptr<nn::Sequential>> stages_;
  std::vector<std::vector<std::shared_ptr<BasicBlock>>> stage_blocks_;
  std::unique_ptr<ConvEvalPlan> fstem_;  ///< null until prepare_fused_eval()
  std::shared_ptr<nn::Linear> head_;
  std::vector<std::string> tap_names_;
};

}  // namespace ibrar::models
