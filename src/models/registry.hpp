#pragma once
// Name-based model factory used by benches and examples
// ("vgg16" / "resnet18" / "wrn28" / "mlp" — the paper's architectures mapped
// onto their Mini counterparts).

#include <memory>
#include <string>

#include "models/classifier.hpp"

namespace ibrar::models {

struct ModelSpec {
  std::string name = "vgg16";
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t in_channels = 3;
};

/// Construct a model by name; throws std::invalid_argument for unknown names.
TapClassifierPtr make_model(const ModelSpec& spec, Rng& rng);

/// The default "robust layers" for a model, as found by the paper's Table 3
/// procedure (VGG: conv block 5 + fc1 + fc2; ResNet/WRN: last stage + gap).
std::vector<std::string> default_robust_layers(const std::string& model_name);

}  // namespace ibrar::models
