#include "models/mlp.hpp"

namespace ibrar::models {

MLP::MLP(const MLPConfig& cfg, Rng& rng) : cfg_(cfg) {
  std::int64_t in = cfg_.in_features;
  for (std::size_t i = 0; i < cfg_.hidden.size(); ++i) {
    auto fc = std::make_shared<nn::Linear>(in, cfg_.hidden[i], rng);
    register_module("fc" + std::to_string(i + 1), fc);
    layers_.push_back(std::move(fc));
    tap_names_.push_back("fc" + std::to_string(i + 1));
    in = cfg_.hidden[i];
  }
  head_ = std::make_shared<nn::Linear>(in, cfg_.num_classes, rng);
  register_module("head", head_);
}

TapsOutput MLP::forward_with_taps(const ag::Var& x) {
  // Eval mode has no mode-dependent ops left; route through the const path so
  // train/eval consistency is structural rather than maintained by hand.
  if (!training()) return eval_forward_with_taps(x);
  TapsOutput out;
  // Accept image tensors too: flatten anything beyond rank 2.
  ag::Var h = x.shape().size() > 2 ? ag::flatten2d(x) : x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = ag::relu(layers_[i]->forward(h));
    if (i + 1 == layers_.size()) {
      if (mask_.numel() > 0 && mask_.rank() == 1) {
        h = ag::mul(h, ag::Var::constant(mask_.reshape({1, mask_.numel()})));
      }
      h = maybe_noise(h);
    }
    out.taps.push_back(h);
  }
  out.logits = head_->forward(h);
  return out;
}

TapsOutput MLP::eval_forward_with_taps(const ag::Var& x) const {
  TapsOutput out;
  ag::Var h = x.shape().size() > 2 ? ag::flatten2d(x) : x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = ag::relu(layers_[i]->eval_forward(h));
    if (i + 1 == layers_.size() && mask_.numel() > 0 && mask_.rank() == 1) {
      h = ag::mul(h, ag::Var::constant(mask_.reshape({1, mask_.numel()})));
    }
    out.taps.push_back(h);
  }
  out.logits = head_->eval_forward(h);
  return out;
}

}  // namespace ibrar::models
