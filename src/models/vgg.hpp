#pragma once
// MiniVGG: a width-reduced VGG16 topology for 16x16 RGB inputs.
//
// Preserves the structural facts IB-RAR depends on: five convolutional blocks
// followed by two hidden fully-connected layers and a classifier head, with
// the channel mask applied to conv block 5's output. Pooling after blocks
// 1-3 keeps block 4/5 working on 2x2 maps (the paper's 32x32 inputs pool
// after every block).

#include "models/classifier.hpp"

namespace ibrar::models {

struct VGGConfig {
  std::vector<std::int64_t> channels = {8, 12, 16, 24, 24};  ///< per block
  std::int64_t convs_per_block = 2;
  std::int64_t fc_dim = 64;
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t in_channels = 3;
  float dropout = 0.3f;
  bool batch_norm = true;
};

class MiniVGG : public TapClassifier {
 public:
  MiniVGG(const VGGConfig& cfg, Rng& rng);

  TapsOutput forward_with_taps(const ag::Var& x) override;
  TapsOutput eval_forward_with_taps(const ag::Var& x) const override;
  void prepare_fused_eval() override;
  bool fused_eval_ready() const override { return !fused_.empty(); }
  const std::vector<std::string>& tap_names() const override { return tap_names_; }
  std::int64_t last_conv_channels() const override { return cfg_.channels.back(); }
  std::int64_t num_classes() const override { return cfg_.num_classes; }
  std::size_t last_conv_tap_index() const override { return 4; }

  const VGGConfig& config() const { return cfg_; }

 private:
  /// One conv block lowered for fused eval: conv(+bias)+BN+ReLU plans, then
  /// the ctor's pool decision replayed on tensors.
  struct FusedBlock {
    std::vector<ConvEvalPlan> convs;
    bool pool = false;
  };

  TapsOutput fused_eval_with_taps(const Tensor& x) const;
  /// Shared flatten/fc1/fc2/head tail of both eval paths (dropout identity).
  TapsOutput fc_tail(const ag::Var& h, TapsOutput out) const;

  VGGConfig cfg_;
  std::vector<std::shared_ptr<nn::Sequential>> blocks_;
  std::vector<std::vector<std::shared_ptr<nn::Conv2d>>> conv_layers_;
  std::vector<std::vector<std::shared_ptr<nn::BatchNorm2d>>> bn_layers_;
  std::vector<char> pool_after_;
  std::vector<FusedBlock> fused_;  ///< empty until prepare_fused_eval()
  std::shared_ptr<nn::Linear> fc1_;
  std::shared_ptr<nn::Linear> fc2_;
  std::shared_ptr<nn::Linear> head_;
  std::shared_ptr<nn::Dropout> drop1_;
  std::shared_ptr<nn::Dropout> drop2_;
  std::vector<std::string> tap_names_;
};

}  // namespace ibrar::models
