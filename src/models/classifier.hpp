#pragma once
// Classifier base with "taps": intermediate activations exposed per forward
// pass so the IB-RAR MI loss can regularize chosen hidden layers, plus the
// feature-channel mask hook (paper Eq. 3) applied to the last conv output.

#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace ibrar::models {

/// Output of a tapped forward pass: final logits plus one Var per tap point
/// (tap order matches tap_names()).
struct TapsOutput {
  ag::Var logits;
  std::vector<ag::Var> taps;
};

/// Image classifier exposing intermediate representations and a per-channel
/// mask on the last convolutional feature map.
class TapClassifier : public nn::Module {
 public:
  /// Forward pass collecting the tapped intermediate activations.
  virtual TapsOutput forward_with_taps(const ag::Var& x) = 0;

  /// Strictly-const eval-semantics tapped forward: no train/eval mode reads
  /// or flips, no RNG draws (dropout identity, no VIB noise), batch norm on
  /// frozen running stats. Bit-identical to forward_with_taps() on a model in
  /// eval mode, and safe to call concurrently from any number of threads on a
  /// shared immutable model — the contract the serving ModelSnapshot and the
  /// telemetry tap capture rely on. Graph-building still follows the ambient
  /// grad mode, so gradient attacks can differentiate through it.
  virtual TapsOutput eval_forward_with_taps(const ag::Var& x) const = 0;

  /// Build the fused inference plans (tensor/conv_eval.hpp): prepacked
  /// weight panels + folded BN per conv layer. Called once at ModelSnapshot
  /// publish time, before the model is frozen behind a const pointer; no-op
  /// for dense models, when plans already exist, or when IBRAR_EVAL_FUSED=0.
  /// After this, eval_forward_with_taps takes the fused tensor path whenever
  /// gradient recording is off — bit-identical logits and taps by contract.
  virtual void prepare_fused_eval() {}

  /// True once prepare_fused_eval() has built plans.
  virtual bool fused_eval_ready() const { return false; }

  /// Names of tap points, e.g. {"conv_block1", ..., "fc1", "fc2"}.
  virtual const std::vector<std::string>& tap_names() const = 0;

  /// Channel count of the last conv layer (mask length).
  virtual std::int64_t last_conv_channels() const = 0;

  virtual std::int64_t num_classes() const = 0;

  ag::Var forward(const ag::Var& x) override {
    return forward_with_taps(x).logits;
  }

  ag::Var eval_forward(const ag::Var& x) const override {
    return eval_forward_with_taps(x).logits;
  }

  /// Install the Eq. (3) binary mask over last-conv channels (empty = off).
  void set_channel_mask(Tensor mask);
  void clear_channel_mask() { mask_ = Tensor({0}); }
  bool has_channel_mask() const { return mask_.numel() > 1 || mask_.rank() == 1; }
  const Tensor& channel_mask() const { return mask_; }

  /// Index of the tap that the mask applies to (the last conv block).
  virtual std::size_t last_conv_tap_index() const = 0;

  /// Gaussian noise std injected on the penultimate representation during
  /// training — the stochastic-encoding half of the VIB baseline (the KL
  /// penalty is added by the VIB objective in src/train/vib.*).
  void set_penultimate_noise(float stddev) { noise_std_ = stddev; }
  float penultimate_noise() const { return noise_std_; }

 protected:
  /// Multiply an (N,C,H,W) feature map by the installed mask (identity when
  /// no mask is set).
  ag::Var apply_channel_mask(const ag::Var& feat) const;

  /// Tensor-level twin of apply_channel_mask for the fused eval path — the
  /// same ibrar::mul broadcast ag::mul evaluates, so values are bit-equal.
  Tensor apply_channel_mask_eval(const Tensor& feat) const;

  /// Add the VIB reparameterization noise in training mode (identity else).
  ag::Var maybe_noise(const ag::Var& h);

  Tensor mask_{Shape{0}};  ///< (C) of 0/1; numel 0 = disabled
  float noise_std_ = 0.0f;
  Rng noise_rng_{0x71bu};
};

using TapClassifierPtr = std::shared_ptr<TapClassifier>;

}  // namespace ibrar::models
