#include "models/vgg.hpp"

#include <stdexcept>
#include <utility>

#include "autograd/var.hpp"
#include "tensor/ops.hpp"

namespace ibrar::models {

void TapClassifier::set_channel_mask(Tensor mask) {
  if (mask.rank() != 1 || mask.numel() != last_conv_channels()) {
    throw std::invalid_argument("set_channel_mask: mask must be (C) with C = " +
                                std::to_string(last_conv_channels()));
  }
  mask_ = std::move(mask);
}

ag::Var TapClassifier::apply_channel_mask(const ag::Var& feat) const {
  if (mask_.numel() == 0 || mask_.rank() == 0) return feat;
  const auto c = mask_.numel();
  return ag::mul(feat, ag::Var::constant(mask_.reshape({1, c, 1, 1})));
}

Tensor TapClassifier::apply_channel_mask_eval(const Tensor& feat) const {
  if (mask_.numel() == 0 || mask_.rank() == 0) return feat;
  const auto c = mask_.numel();
  return ibrar::mul(feat, mask_.reshape({1, c, 1, 1}));
}

ag::Var TapClassifier::maybe_noise(const ag::Var& h) {
  if (noise_std_ <= 0.0f || !training()) return h;
  Tensor noise(h.shape());
  for (auto& v : noise.vec()) v = noise_rng_.normal(0.0f, noise_std_);
  return ag::add(h, ag::Var::constant(noise));
}

MiniVGG::MiniVGG(const VGGConfig& cfg, Rng& rng) : cfg_(cfg) {
  if (cfg_.channels.size() != 5) {
    throw std::invalid_argument("MiniVGG: exactly 5 conv blocks");
  }
  std::int64_t in_c = cfg_.in_channels;
  std::int64_t spatial = cfg_.image_size;
  for (std::size_t b = 0; b < 5; ++b) {
    auto block = std::make_shared<nn::Sequential>();
    const std::int64_t out_c = cfg_.channels[b];
    std::vector<std::shared_ptr<nn::Conv2d>> convs;
    std::vector<std::shared_ptr<nn::BatchNorm2d>> bns;
    for (std::int64_t k = 0; k < cfg_.convs_per_block; ++k) {
      auto conv = std::make_shared<nn::Conv2d>(k == 0 ? in_c : out_c, out_c,
                                               rng);
      convs.push_back(conv);
      block->push_back(std::move(conv));
      if (cfg_.batch_norm) {
        auto bn = std::make_shared<nn::BatchNorm2d>(out_c);
        bns.push_back(bn);
        block->push_back(std::move(bn));
      }
      block->push_back(std::make_shared<nn::ReLU>());
    }
    // Pool while spatial size allows it (blocks 1-3 at 16x16 input); VGG16
    // pools after every block at 32x32, which this mirrors proportionally.
    bool pool = false;
    if (b < 3 && spatial >= 4) {
      block->push_back(std::make_shared<nn::MaxPool2d>(2));
      spatial /= 2;
      pool = true;
    }
    register_module("block" + std::to_string(b + 1), block);
    blocks_.push_back(std::move(block));
    conv_layers_.push_back(std::move(convs));
    bn_layers_.push_back(std::move(bns));
    pool_after_.push_back(pool ? 1 : 0);
    in_c = out_c;
  }

  const std::int64_t flat = cfg_.channels.back() * spatial * spatial;
  fc1_ = std::make_shared<nn::Linear>(flat, cfg_.fc_dim, rng);
  fc2_ = std::make_shared<nn::Linear>(cfg_.fc_dim, cfg_.fc_dim, rng);
  head_ = std::make_shared<nn::Linear>(cfg_.fc_dim, cfg_.num_classes, rng);
  drop1_ = std::make_shared<nn::Dropout>(cfg_.dropout, rng.engine()());
  drop2_ = std::make_shared<nn::Dropout>(cfg_.dropout, rng.engine()());
  register_module("fc1", fc1_);
  register_module("fc2", fc2_);
  register_module("head", head_);
  register_module("drop1", drop1_);
  register_module("drop2", drop2_);

  tap_names_ = {"conv_block1", "conv_block2", "conv_block3",
                "conv_block4", "conv_block5", "fc1", "fc2"};
}

TapsOutput MiniVGG::forward_with_taps(const ag::Var& x) {
  if (!training()) return eval_forward_with_taps(x);
  TapsOutput out;
  ag::Var h = x;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    h = blocks_[b]->forward(h);
    if (b == 4) h = apply_channel_mask(h);  // Eq. (3): mask last conv output
    out.taps.push_back(h);
  }
  h = ag::flatten2d(h);
  h = ag::relu(fc1_->forward(h));
  h = drop1_->forward(h);
  out.taps.push_back(h);  // fc1
  h = ag::relu(fc2_->forward(h));
  h = drop2_->forward(h);
  h = maybe_noise(h);
  out.taps.push_back(h);  // fc2
  out.logits = head_->forward(h);
  return out;
}

TapsOutput MiniVGG::eval_forward_with_taps(const ag::Var& x) const {
  // Fused tensor path: only when plans exist and nobody is recording a graph
  // (gradient attacks differentiate through the layer-by-layer path below).
  if (!fused_.empty() && !ag::grad_enabled()) {
    return fused_eval_with_taps(x.value());
  }
  TapsOutput out;
  ag::Var h = x;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    h = blocks_[b]->eval_forward(h);
    if (b == 4) h = apply_channel_mask(h);  // Eq. (3): mask last conv output
    out.taps.push_back(h);
  }
  return fc_tail(h, std::move(out));
}

TapsOutput MiniVGG::fc_tail(const ag::Var& hin, TapsOutput out) const {
  ag::Var h = ag::flatten2d(hin);
  h = ag::relu(fc1_->eval_forward(h));  // dropout is identity in eval
  out.taps.push_back(h);                // fc1
  h = ag::relu(fc2_->eval_forward(h));
  out.taps.push_back(h);                // fc2
  out.logits = head_->eval_forward(h);
  return out;
}

void MiniVGG::prepare_fused_eval() {
  if (!fused_.empty() || !fused_eval_enabled()) return;
  std::vector<FusedBlock> plans;
  for (std::size_t b = 0; b < conv_layers_.size(); ++b) {
    FusedBlock fb;
    fb.pool = pool_after_[b] != 0;
    for (std::size_t k = 0; k < conv_layers_[b].size(); ++k) {
      const auto& conv = *conv_layers_[b][k];
      FoldedBn bn;
      if (cfg_.batch_norm) bn = bn_layers_[b][k]->folded();
      fb.convs.emplace_back(conv.weight_value(),
                            conv.has_bias() ? &conv.bias_value() : nullptr,
                            conv.spec(), std::move(bn), /*relu=*/true);
    }
    plans.push_back(std::move(fb));
  }
  fused_ = std::move(plans);
}

TapsOutput MiniVGG::fused_eval_with_taps(const Tensor& x) const {
  TapsOutput out;
  Tensor h = x;
  for (std::size_t b = 0; b < fused_.size(); ++b) {
    for (const ConvEvalPlan& plan : fused_[b].convs) h = plan.run(h);
    if (fused_[b].pool) h = maxpool2d_eval(h, 2, 2);
    if (b == 4) h = apply_channel_mask_eval(h);
    out.taps.push_back(ag::Var::constant(h));
  }
  return fc_tail(ag::Var::constant(h), std::move(out));
}

}  // namespace ibrar::models
