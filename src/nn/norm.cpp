#include "nn/layers.hpp"

namespace ibrar::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(ag::Var::param(Tensor({channels}, 1.0f))),
      beta_(ag::Var::param(Tensor({channels}))),
      running_mean_({channels}),
      running_var_(Tensor({channels}, 1.0f)) {
  register_parameter("gamma", gamma_);
  register_parameter("beta", beta_);
  register_buffer("running_mean", &running_mean_);
  register_buffer("running_var", &running_var_);
}

ag::Var BatchNorm2d::forward(const ag::Var& x) {
  return ag::batch_norm2d(x, gamma_, beta_, running_mean_, running_var_,
                          training(), momentum_, eps_);
}

ag::Var BatchNorm2d::eval_forward(const ag::Var& x) const {
  return ag::batch_norm2d_eval(x, gamma_, beta_, running_mean_, running_var_,
                               eps_);
}

FoldedBn BatchNorm2d::folded() const {
  return fold_batch_norm(gamma_.value(), beta_.value(), running_mean_,
                         running_var_, eps_);
}

}  // namespace ibrar::nn
