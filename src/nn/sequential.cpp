#include "nn/layers.hpp"

namespace ibrar::nn {

Sequential::Sequential(std::vector<ModulePtr> mods) {
  for (auto& m : mods) push_back(std::move(m));
}

void Sequential::push_back(ModulePtr m) {
  register_module(std::to_string(seq_.size()), m);
  seq_.push_back(std::move(m));
}

ag::Var Sequential::forward(const ag::Var& x) {
  ag::Var h = x;
  for (auto& m : seq_) h = m->forward(h);
  return h;
}

ag::Var Sequential::eval_forward(const ag::Var& x) const {
  ag::Var h = x;
  for (const auto& m : seq_) h = m->eval_forward(h);
  return h;
}

}  // namespace ibrar::nn
