#pragma once
// Neural-network module hierarchy (PyTorch-flavoured, value-semantic params).
//
// A Module owns parameter leaves (ag::Var with requires_grad) and child
// modules; parameters(), named_parameters() and named_buffers() walk the tree.
// Buffers are non-trainable state (batch-norm running stats) included in
// checkpoints but not in the optimizer.

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/var.hpp"

namespace ibrar::nn {

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass (graph-building when grads are enabled).
  virtual ag::Var forward(const ag::Var& x) = 0;

  /// Strictly-const eval-semantics forward: batch norm reads frozen running
  /// stats, dropout is identity, no RNG draws, no buffer writes — regardless
  /// of the training/eval flag, which it never reads or flips. Bit-identical
  /// to forward() on a module in eval mode. This is the path concurrent
  /// serving workers share one immutable model through; every concrete layer
  /// overrides it. Graph-building still follows the ambient grad mode, so
  /// attacks can differentiate through it.
  virtual ag::Var eval_forward(const ag::Var& x) const {
    (void)x;
    throw std::logic_error(
        "Module::eval_forward: this module has no const eval path");
  }

  ag::Var operator()(const ag::Var& x) { return forward(x); }

  /// All trainable parameter leaves in the subtree (stable order).
  std::vector<ag::Var> parameters();

  /// (qualified name, parameter) pairs in the subtree.
  std::vector<std::pair<std::string, ag::Var>> named_parameters();

  /// (qualified name, buffer pointer) pairs — mutable non-trainable state.
  std::vector<std::pair<std::string, Tensor*>> named_buffers();

  /// Switch training/eval mode for the subtree (affects BN, dropout).
  void set_training(bool training);
  bool training() const { return training_; }

  /// Zero every parameter gradient in the subtree.
  void zero_grad();

  /// Number of scalar parameters in the subtree.
  std::int64_t num_parameters();

 protected:
  void register_parameter(std::string name, ag::Var p);
  void register_buffer(std::string name, Tensor* buf);
  void register_module(std::string name, std::shared_ptr<Module> m);

  /// Hook for modules that cache mode-dependent state.
  virtual void on_mode_change() {}

  std::vector<std::pair<std::string, ag::Var>> params_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

using ModulePtr = std::shared_ptr<Module>;

/// Save all parameters and buffers of `m` to a checkpoint file.
void save_model(Module& m, const std::string& path);

/// Load a checkpoint produced by save_model into `m` (shapes must match).
void load_model(Module& m, const std::string& path);

/// Deep-copy the parameter/buffer state of `src` into `dst` (architectures
/// must match). Used to snapshot models for comparison benches.
void copy_state(Module& src, Module& dst);

}  // namespace ibrar::nn
