#include "nn/layers.hpp"

namespace ibrar::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {}

ag::Var Dropout::forward(const ag::Var& x) {
  return ag::dropout(x, p_, training(), rng_);
}

}  // namespace ibrar::nn
