#include "nn/module.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/serialize.hpp"

namespace ibrar::nn {

std::vector<ag::Var> Module::parameters() {
  std::vector<ag::Var> out;
  for (auto& [name, p] : named_parameters()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, ag::Var>> Module::named_parameters() {
  std::vector<std::pair<std::string, ag::Var>> out;
  for (auto& [name, p] : params_) out.emplace_back(name, p);
  for (auto& [cname, child] : children_) {
    for (auto& [pname, p] : child->named_parameters()) {
      out.emplace_back(cname + "." + pname, p);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Tensor*>> Module::named_buffers() {
  std::vector<std::pair<std::string, Tensor*>> out;
  for (auto& [name, b] : buffers_) out.emplace_back(name, b);
  for (auto& [cname, child] : children_) {
    for (auto& [bname, b] : child->named_buffers()) {
      out.emplace_back(cname + "." + bname, b);
    }
  }
  return out;
}

void Module::set_training(bool training) {
  training_ = training;
  on_mode_change();
  for (auto& [name, child] : children_) child->set_training(training);
}

void Module::zero_grad() {
  for (auto& p : parameters()) p.zero_grad();
}

std::int64_t Module::num_parameters() {
  std::int64_t n = 0;
  for (auto& p : parameters()) n += p.numel();
  return n;
}

void Module::register_parameter(std::string name, ag::Var p) {
  params_.emplace_back(std::move(name), std::move(p));
}

void Module::register_buffer(std::string name, Tensor* buf) {
  buffers_.emplace_back(std::move(name), buf);
}

void Module::register_module(std::string name, std::shared_ptr<Module> m) {
  children_.emplace_back(std::move(name), std::move(m));
}

void save_model(Module& m, const std::string& path) {
  std::vector<serialize::NamedBlob> blobs;
  for (auto& [name, p] : m.named_parameters()) {
    blobs.push_back({name, p.value().shape(), p.value().vec()});
  }
  for (auto& [name, b] : m.named_buffers()) {
    blobs.push_back({"buffer:" + name, b->shape(), b->vec()});
  }
  serialize::save(path, blobs);
}

void load_model(Module& m, const std::string& path) {
  const auto blobs = serialize::load(path);
  std::unordered_map<std::string, const serialize::NamedBlob*> by_name;
  for (const auto& b : blobs) by_name[b.name] = &b;

  for (auto& [name, p] : m.named_parameters()) {
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("load_model: missing parameter " + name);
    }
    if (it->second->shape != p.value().shape()) {
      throw std::runtime_error("load_model: shape mismatch for " + name);
    }
    p.mutable_value().vec() = it->second->data;
  }
  for (auto& [name, b] : m.named_buffers()) {
    const auto it = by_name.find("buffer:" + name);
    if (it == by_name.end()) {
      throw std::runtime_error("load_model: missing buffer " + name);
    }
    if (it->second->shape != b->shape()) {
      throw std::runtime_error("load_model: buffer shape mismatch for " + name);
    }
    b->vec() = it->second->data;
  }
}

void copy_state(Module& src, Module& dst) {
  auto sp = src.named_parameters();
  auto dp = dst.named_parameters();
  if (sp.size() != dp.size()) {
    throw std::invalid_argument("copy_state: parameter count mismatch");
  }
  for (std::size_t i = 0; i < sp.size(); ++i) {
    if (!(sp[i].second.value().shape() == dp[i].second.value().shape())) {
      throw std::invalid_argument("copy_state: shape mismatch at " + sp[i].first);
    }
    dp[i].second.mutable_value().vec() = sp[i].second.value().vec();
  }
  auto sb = src.named_buffers();
  auto db = dst.named_buffers();
  if (sb.size() != db.size()) {
    throw std::invalid_argument("copy_state: buffer count mismatch");
  }
  for (std::size_t i = 0; i < sb.size(); ++i) {
    db[i].second->vec() = sb[i].second->vec();
  }
}

}  // namespace ibrar::nn
