#include <cmath>

#include "nn/init.hpp"
#include "nn/layers.hpp"

namespace ibrar::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features) {
  Tensor w({in_, out_});
  kaiming_normal(w, in_, rng);
  weight_ = ag::Var::param(std::move(w));
  register_parameter("weight", weight_);
  if (bias) {
    Tensor b({out_});
    uniform_init(b, 1.0f / std::sqrt(static_cast<float>(in_)), rng);
    bias_ = ag::Var::param(std::move(b));
    register_parameter("bias", bias_);
  }
}

ag::Var Linear::forward(const ag::Var& x) {
  ag::Var y = ag::matmul(x, weight_);
  if (bias_.defined()) y = ag::add(y, bias_);
  return y;
}

ag::Var Linear::eval_forward(const ag::Var& x) const {
  ag::Var y = ag::matmul(x, weight_);
  if (bias_.defined()) y = ag::add(y, bias_);
  return y;
}

}  // namespace ibrar::nn
