#include "nn/layers.hpp"

namespace ibrar::nn {}
