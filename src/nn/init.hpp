#pragma once
// Weight initialization schemes.

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ibrar::nn {

/// He/Kaiming normal: N(0, sqrt(2/fan_in)) — the right scale for ReLU nets.
void kaiming_normal(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Glorot/Xavier uniform: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out, Rng& rng);

/// Uniform in [-bound, bound] (bias init).
void uniform_init(Tensor& w, float bound, Rng& rng);

}  // namespace ibrar::nn
