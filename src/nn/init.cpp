#include "nn/init.hpp"

#include <cmath>

namespace ibrar::nn {

void kaiming_normal(Tensor& w, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& x : w.vec()) x = rng.normal(0.0f, stddev);
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& x : w.vec()) x = rng.uniform(-a, a);
}

void uniform_init(Tensor& w, float bound, Rng& rng) {
  for (auto& x : w.vec()) x = rng.uniform(-bound, bound);
}

}  // namespace ibrar::nn
