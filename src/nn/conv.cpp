#include <cmath>

#include "nn/init.hpp"
#include "nn/layers.hpp"

namespace ibrar::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, Rng& rng,
               Conv2dSpec spec, bool bias)
    : in_(in_channels), out_(out_channels), spec_(spec) {
  const std::int64_t fan_in = in_ * spec_.kernel * spec_.kernel;
  Tensor w({out_, in_, spec_.kernel, spec_.kernel});
  kaiming_normal(w, fan_in, rng);
  weight_ = ag::Var::param(std::move(w));
  register_parameter("weight", weight_);
  if (bias) {
    Tensor b({out_});
    uniform_init(b, 1.0f / std::sqrt(static_cast<float>(fan_in)), rng);
    bias_ = ag::Var::param(std::move(b));
    register_parameter("bias", bias_);
  }
}

ag::Var Conv2d::forward(const ag::Var& x) {
  return ag::conv2d(x, weight_, bias_, spec_);
}

ag::Var Conv2d::eval_forward(const ag::Var& x) const {
  return ag::conv2d(x, weight_, bias_, spec_);
}

}  // namespace ibrar::nn
