#pragma once
// Concrete layers: Linear, Conv2d, BatchNorm2d, ReLU, MaxPool2d, Dropout,
// Flatten, Sequential.

#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "tensor/conv_eval.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace ibrar::nn {

/// Fully connected layer: y = x W + b with W of shape (in, out).
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);
  ag::Var forward(const ag::Var& x) override;
  ag::Var eval_forward(const ag::Var& x) const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  ag::Var weight_;
  ag::Var bias_;
};

/// 2-D convolution (NCHW), square kernel.
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, Rng& rng,
         Conv2dSpec spec = {}, bool bias = true);
  ag::Var forward(const ag::Var& x) override;
  ag::Var eval_forward(const ag::Var& x) const override;

  std::int64_t in_channels() const { return in_; }
  std::int64_t out_channels() const { return out_; }
  const Conv2dSpec& spec() const { return spec_; }

  /// Frozen views for the fused eval prepack (tensor/conv_eval.hpp).
  const Tensor& weight_value() const { return weight_.value(); }
  bool has_bias() const { return bias_.defined(); }
  const Tensor& bias_value() const { return bias_.value(); }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Conv2dSpec spec_;
  ag::Var weight_;
  ag::Var bias_;
};

/// Per-channel batch normalization over NCHW.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);
  ag::Var forward(const ag::Var& x) override;
  /// Reads the frozen running stats; never writes them (batch_norm2d_eval).
  ag::Var eval_forward(const ag::Var& x) const override;

  /// Running stats folded for the fused eval path (tensor/conv_eval.hpp):
  /// the same {mean, 1/sqrt(var+eps), gamma, beta} batch_norm2d_apply uses.
  FoldedBn folded() const;

 private:
  std::int64_t channels_;
  float momentum_;
  float eps_;
  ag::Var gamma_;
  ag::Var beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

class ReLU : public Module {
 public:
  ag::Var forward(const ag::Var& x) override { return ag::relu(x); }
  ag::Var eval_forward(const ag::Var& x) const override { return ag::relu(x); }
};

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel = 2, std::int64_t stride = -1)
      : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}
  ag::Var forward(const ag::Var& x) override {
    return ag::maxpool2d(x, kernel_, stride_);
  }
  ag::Var eval_forward(const ag::Var& x) const override {
    return ag::maxpool2d(x, kernel_, stride_);
  }

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
};

/// Inverted dropout (identity in eval mode).
class Dropout : public Module {
 public:
  explicit Dropout(float p, std::uint64_t seed = 0xd0u);
  ag::Var forward(const ag::Var& x) override;
  /// Eval-mode dropout is the identity — no mask draw, rng untouched.
  ag::Var eval_forward(const ag::Var& x) const override { return x; }

 private:
  float p_;
  Rng rng_;
};

/// (N, C, H, W) -> (N, C*H*W).
class Flatten : public Module {
 public:
  ag::Var forward(const ag::Var& x) override { return ag::flatten2d(x); }
  ag::Var eval_forward(const ag::Var& x) const override {
    return ag::flatten2d(x);
  }
};

/// Ordered container applying children in sequence.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> mods);

  void push_back(ModulePtr m);
  ag::Var forward(const ag::Var& x) override;
  ag::Var eval_forward(const ag::Var& x) const override;

  std::size_t size() const { return seq_.size(); }
  Module& at(std::size_t i) { return *seq_.at(i); }

 private:
  std::vector<ModulePtr> seq_;
};

}  // namespace ibrar::nn
