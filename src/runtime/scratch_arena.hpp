#pragma once
// Per-lane scratch memory for kernel workspaces.
//
// Packing-based kernels (the blocked GEMM in tensor/gemm_packed.*) need a few
// hundred KB of temporary panel storage per executing lane. Allocating it per
// call would put malloc on the hottest path in the library, so each OS thread
// owns one lazily-grown ScratchArena that is reused across calls for the
// lifetime of the thread. Pool lanes are long-lived (the global ThreadPool
// never recycles its workers), so in steady state every lane settles at the
// high-water mark of the kernels it runs and no further allocation happens.
//
// Buffers are aligned to kScratchAlign (one cache line, and wide enough for
// any SIMD width the compiler vectorizes with) and are uninitialized: callers
// must treat the contents as garbage until they pack into them.

#include <cstddef>
#include <cstdint>
#include <memory>

namespace ibrar::runtime {

inline constexpr std::size_t kScratchAlign = 64;

/// Named arena slots. Slots are independent buffers, so kernels that nest can
/// coexist as long as each holds a distinct handle: the packed GEMM owns
/// kGemmPackA/kGemmPackB, the symmetric Gram driver (tensor/matmul.cpp) holds
/// its C block in kSymGramTile across the gemm_packed call it makes into the
/// pack slots, and the serving telemetry (serve/telemetry.cpp) keeps its
/// per-channel statistics in kServeTelemetry across the channel-score kernels
/// it invokes (which bottom out in the same GEMM slots). Adding a consumer =
/// adding an enumerator; the arena sizes itself from kCount.
enum class Scratch : std::size_t {
  kGemmPackA = 0,   ///< A panels, per lane (tensor/gemm_packed.cpp)
  kGemmPackB,       ///< shared packed B (tensor/gemm_packed.cpp)
  kSymGramTile,     ///< C block of matmul_nt_sym, held across gemm_packed
  kServeTelemetry,  ///< per-channel energies, held across channel scoring
  kConvPackB,       ///< implicit-im2col B strips (tensor/conv_eval.cpp)
  kConvAccC,        ///< fused conv C accumulator block (tensor/conv_eval.cpp)
  kCount,
};

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Aligned buffer of at least `floats` elements in `slot`, valid until the
  /// next resize of the same slot.
  float* floats(Scratch slot, std::size_t floats);

  /// High-water mark in bytes across all slots (for tests/telemetry).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto b : bytes_) total += b;
    return total;
  }

 private:
  struct AlignedFree {
    void operator()(float* p) const { ::operator delete[](p, std::align_val_t{kScratchAlign}); }
  };
  static constexpr std::size_t kSlots = static_cast<std::size_t>(Scratch::kCount);
  std::unique_ptr<float[], AlignedFree> buf_[kSlots];
  std::size_t bytes_[kSlots] = {};
};

/// The calling thread's arena (thread_local; one per pool lane plus one for
/// the main thread and any user thread that calls into the library).
ScratchArena& lane_arena();

}  // namespace ibrar::runtime
