#pragma once
// Per-lane scratch memory for kernel workspaces.
//
// Packing-based kernels (the blocked GEMM in tensor/gemm_packed.*) need a few
// hundred KB of temporary panel storage per executing lane. Allocating it per
// call would put malloc on the hottest path in the library, so each OS thread
// owns one lazily-grown ScratchArena that is reused across calls for the
// lifetime of the thread. Pool lanes are long-lived (the global ThreadPool
// never recycles its workers), so in steady state every lane settles at the
// high-water mark of the kernels it runs and no further allocation happens.
//
// Buffers are aligned to kScratchAlign (one cache line, and wide enough for
// any SIMD width the compiler vectorizes with) and are uninitialized: callers
// must treat the contents as garbage until they pack into them.

#include <cstddef>
#include <cstdint>
#include <memory>

namespace ibrar::runtime {

inline constexpr std::size_t kScratchAlign = 64;

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Aligned buffer of at least `floats` elements, valid until the next
  /// resize of the same slot. Slots are independent so nested kernels can
  /// coexist: the packed GEMM owns slot 0 (A panels) and slot 1 (packed B),
  /// and the symmetric Gram driver (tensor/matmul.cpp) holds its C block in
  /// slot 2 across the gemm_packed call it makes into slots 0/1.
  float* floats(std::size_t slot, std::size_t floats);

  /// High-water mark in bytes across all slots (for tests/telemetry).
  std::size_t capacity_bytes() const {
    return bytes_[0] + bytes_[1] + bytes_[2];
  }

 private:
  struct AlignedFree {
    void operator()(float* p) const { ::operator delete[](p, std::align_val_t{kScratchAlign}); }
  };
  static constexpr std::size_t kSlots = 3;
  std::unique_ptr<float[], AlignedFree> buf_[kSlots];
  std::size_t bytes_[kSlots] = {0, 0, 0};
};

/// The calling thread's arena (thread_local; one per pool lane plus one for
/// the main thread and any user thread that calls into the library).
ScratchArena& lane_arena();

}  // namespace ibrar::runtime
