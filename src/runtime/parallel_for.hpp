#pragma once
// Deterministic data-parallel primitives on top of the global ThreadPool.
//
// parallel_for(begin, end, grain, fn) calls fn(block_begin, block_end) over a
// static partition of [begin, end). Use it when blocks write disjoint outputs:
// every element is produced by exactly the same instruction sequence as the
// serial loop, so results are bit-identical for any thread count.
//
// parallel_reduce chunks the range purely by `grain` — the chunk layout never
// depends on the pool size — and combines the per-chunk partials in ascending
// chunk order. Floating-point reductions therefore give the same bits at 1
// thread and at N threads (though a different grain is a different grouping).
//
// Ranges not worth splitting (n <= grain) and nested regions run serially
// inline; so does everything when the pool has a single lane.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/profile.hpp"
#include "runtime/thread_pool.hpp"

namespace ibrar::runtime {

/// Default grain for cheap per-element loops (floats per block).
inline constexpr std::int64_t kElementwiseGrain = 1 << 14;

/// Work floor below which a kernel should not fan out at all (FLOP-ish).
inline constexpr std::int64_t kMinParallelWork = 1 << 15;

/// Grain (items per block) so each block carries at least kMinParallelWork
/// units given `per_item_work` units per item.
inline std::int64_t grain_for(std::int64_t per_item_work) {
  return std::max<std::int64_t>(
      1, kMinParallelWork / std::max<std::int64_t>(1, per_item_work));
}

template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  F&& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  // Cheap bail-outs first: the dominant small-op / nested path must not touch
  // the global pool (global_pool() takes a mutex).
  if (n <= g || in_parallel_region()) {
    fn(begin, end);
    return;
  }
  ThreadPool& pool = global_pool();
  if (pool.lanes() <= 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunks =
      std::min<std::int64_t>(pool.lanes(), (n + g - 1) / g);
  // Only the pool-dispatch branch is profiled: the serial/nested bail-outs
  // above are the dominant small-op path and must stay hook-free.
  static obs::ProfileSite& prof =
      obs::profile_site("runtime/parallel_for.dispatch");
  obs::ProfileScope prof_scope(prof);
  pool.run_chunked(begin, end, chunks,
                   std::function<void(std::int64_t, std::int64_t)>(
                       std::forward<F>(fn)));
}

/// acc = combine(acc, map(chunk_begin, chunk_end)) over grain-sized chunks in
/// ascending order. `map` runs in parallel; `combine` runs on the caller.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T init, Map&& map, Combine&& combine) {
  const std::int64_t n = end - begin;
  if (n <= 0) return init;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = (n + g - 1) / g;  // a function of grain only
  if (chunks <= 1) return combine(std::move(init), map(begin, end));

  std::vector<T> partial(static_cast<std::size_t>(chunks));
  parallel_for(0, chunks, 1, [&](std::int64_t cb, std::int64_t ce) {
    for (std::int64_t c = cb; c < ce; ++c) {
      partial[static_cast<std::size_t>(c)] =
          map(begin + c * g, std::min<std::int64_t>(end, begin + (c + 1) * g));
    }
  });
  T acc = std::move(init);
  for (auto& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace ibrar::runtime
