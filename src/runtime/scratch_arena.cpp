#include "runtime/scratch_arena.hpp"

namespace ibrar::runtime {

float* ScratchArena::floats(std::size_t slot, std::size_t floats) {
  const std::size_t want = floats * sizeof(float);
  if (bytes_[slot] < want) {
    // Grow geometrically so alternating shapes don't reallocate every call.
    std::size_t cap = bytes_[slot] == 0 ? 4096 : bytes_[slot];
    while (cap < want) cap *= 2;
    buf_[slot].reset(static_cast<float*>(
        ::operator new[](cap, std::align_val_t{kScratchAlign})));
    bytes_[slot] = cap;
  }
  return buf_[slot].get();
}

ScratchArena& lane_arena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace ibrar::runtime
