#include "runtime/scratch_arena.hpp"

namespace ibrar::runtime {

float* ScratchArena::floats(Scratch slot, std::size_t floats) {
  const auto s = static_cast<std::size_t>(slot);
  const std::size_t want = floats * sizeof(float);
  if (bytes_[s] < want) {
    // Grow geometrically so alternating shapes don't reallocate every call.
    std::size_t cap = bytes_[s] == 0 ? 4096 : bytes_[s];
    while (cap < want) cap *= 2;
    buf_[s].reset(static_cast<float*>(
        ::operator new[](cap, std::align_val_t{kScratchAlign})));
    bytes_[s] = cap;
  }
  return buf_[s].get();
}

ScratchArena& lane_arena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace ibrar::runtime
