#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <memory>

#include "util/env.hpp"

namespace ibrar::runtime {
namespace {

thread_local bool tl_in_parallel = false;

/// RAII for the nested-region flag (restores the previous value so the
/// caller's state survives fn() throwing).
struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tl_in_parallel) { tl_in_parallel = true; }
  ~RegionGuard() { tl_in_parallel = prev; }
};

std::int64_t default_lanes() {
  const long v = env::get_int("IBRAR_NUM_THREADS", 0);
  if (v > 0) return static_cast<std::int64_t>(v);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::int64_t>(hc);
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

bool in_parallel_region() { return tl_in_parallel; }

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_lanes());
  return *g_pool;
}

std::int64_t num_threads() { return global_pool().lanes(); }

void set_num_threads(std::int64_t lanes) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool.reset();  // join old workers before spawning replacements
  g_pool = std::make_unique<ThreadPool>(lanes > 0 ? lanes : default_lanes());
}

ThreadPool::ThreadPool(std::int64_t lanes) : lanes_(std::max<std::int64_t>(1, lanes)) {
  workers_.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (std::int64_t i = 0; i < lanes_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_chunked(std::int64_t begin, std::int64_t end,
                             std::int64_t chunks,
                             const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  chunks = std::clamp<std::int64_t>(chunks, 1, n);
  if (chunks == 1 || lanes_ == 1) {
    RegionGuard rg;
    fn(begin, end);
    return;
  }

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t remaining;
    std::exception_ptr eptr;
  } state;
  state.remaining = chunks - 1;

  const std::int64_t base = n / chunks;
  const std::int64_t rem = n % chunks;
  auto chunk_begin = [&](std::int64_t c) {
    return begin + c * base + std::min(c, rem);
  };

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::int64_t c = 1; c < chunks; ++c) {
      const std::int64_t b = chunk_begin(c);
      const std::int64_t e = chunk_begin(c + 1);
      tasks_.emplace_back([&state, &fn, b, e] {
        RegionGuard rg;
        try {
          fn(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> sl(state.mu);
          if (!state.eptr) state.eptr = std::current_exception();
        }
        std::lock_guard<std::mutex> sl(state.mu);
        if (--state.remaining == 0) state.cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  {
    RegionGuard rg;
    try {
      fn(chunk_begin(0), chunk_begin(1));
    } catch (...) {
      std::lock_guard<std::mutex> sl(state.mu);
      if (!state.eptr) state.eptr = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> sl(state.mu);
  state.cv.wait(sl, [&state] { return state.remaining == 0; });
  if (state.eptr) std::rethrow_exception(state.eptr);
}

}  // namespace ibrar::runtime
