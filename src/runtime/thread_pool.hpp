#pragma once
// Fixed-size thread pool: the shared parallel execution runtime.
//
// One lazily-constructed global pool serves the whole library. Its lane count
// comes from IBRAR_NUM_THREADS (via util/env), defaulting to
// hardware_concurrency. "Lanes" counts the calling thread too: a pool with N
// lanes spawns N-1 workers and the caller always executes one share of every
// parallel region, so lanes == 1 means no threads are ever created and every
// parallel_for degenerates to the plain serial loop.
//
// The pool deliberately has no work stealing and uses static partitioning
// (see parallel_for.hpp): chunk boundaries are a pure function of the range
// and grain, never of scheduling, which keeps results bit-reproducible.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ibrar::runtime {

class ThreadPool {
 public:
  /// Pool with `lanes` total execution lanes (caller + lanes-1 workers).
  explicit ThreadPool(std::int64_t lanes);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::int64_t lanes() const { return lanes_; }

  /// Split [begin, end) into `chunks` contiguous blocks (sizes differing by at
  /// most one) and run `fn(block_begin, block_end)` for each, the first block
  /// on the calling thread. Blocks until every block finished; the first
  /// exception thrown by any block is rethrown here.
  void run_chunked(std::int64_t begin, std::int64_t end, std::int64_t chunks,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  void worker_loop();

  std::int64_t lanes_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// The process-wide pool, constructed on first use.
ThreadPool& global_pool();

/// Lane count of the global pool.
std::int64_t num_threads();

/// Rebuild the global pool with `lanes` lanes (0 = auto: IBRAR_NUM_THREADS or
/// hardware_concurrency). Must not race with in-flight parallel regions; meant
/// for benches and tests that sweep thread counts.
void set_num_threads(std::int64_t lanes);

/// True while the current thread is executing inside a parallel region.
/// Nested parallel_for calls run serially to avoid deadlocking the pool.
bool in_parallel_region();

}  // namespace ibrar::runtime
