#include "autograd/ops.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ibrar::ag {

Var matmul(const Var& a, const Var& b) {
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return make_op(ibrar::matmul(av, bv), {a, b}, [av, bv](Node& n) {
    // dA = G B^T ; dB = A^T G
    if (n.parents[0]->requires_grad) {
      n.parents[0]->accumulate(ibrar::matmul_nt(n.grad, bv));
    }
    if (n.parents[1]->requires_grad) {
      n.parents[1]->accumulate(ibrar::matmul_tn(av, n.grad));
    }
  });
}

Var transpose(const Var& a) {
  return make_op(ibrar::transpose2d(a.value()), {a}, [](Node& n) {
    if (n.parents[0]->requires_grad) {
      n.parents[0]->accumulate(ibrar::transpose2d(n.grad));
    }
  });
}

}  // namespace ibrar::ag
