#pragma once
// Differentiable operations on ag::Var.
//
// Each op computes its value with the tensor kernels and registers a backward
// closure that routes the output gradient to the parents (with broadcast
// adjoints where applicable). Implementations are grouped by theme across the
// ops_*.cpp translation units.

#include <vector>

#include "autograd/var.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace ibrar::ag {

// ---- elementwise arithmetic (NumPy broadcasting) ----------------------------

Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);
Var neg(const Var& a);

// ---- elementwise maps --------------------------------------------------------

Var exp(const Var& a);
Var log(const Var& a);        ///< clamped log for numerical safety
Var sqrt(const Var& a);
Var square(const Var& a);
Var pow_scalar(const Var& a, float p);
Var relu(const Var& a);
Var tanh(const Var& a);
Var sigmoid(const Var& a);
Var abs(const Var& a);

// ---- linear algebra ----------------------------------------------------------

Var matmul(const Var& a, const Var& b);   ///< (m,k) x (k,n)
Var transpose(const Var& a);              ///< 2-D transpose

// ---- shape -------------------------------------------------------------------

Var reshape(const Var& a, Shape new_shape);
Var flatten2d(const Var& a);              ///< (N, ...) -> (N, rest)
Var concat_rows(const std::vector<Var>& parts);
Var slice_rows(const Var& a, std::int64_t begin, std::int64_t end);

/// Pick one column per row: out(i) = a(i, idx[i]) -> shape (n, 1).
Var gather_cols(const Var& a, const std::vector<std::int64_t>& idx);

// ---- reductions --------------------------------------------------------------

Var sum(const Var& a);                    ///< scalar
Var mean(const Var& a);                   ///< scalar
Var sum_axis(const Var& a, std::int64_t axis, bool keepdim = false);
Var mean_axis(const Var& a, std::int64_t axis, bool keepdim = false);

// ---- convolution / pooling ---------------------------------------------------

Var conv2d(const Var& x, const Var& w, const Var& bias, const Conv2dSpec& spec);
Var maxpool2d(const Var& x, std::int64_t kernel, std::int64_t stride);
Var global_avg_pool(const Var& x);

// ---- normalization / regularization -----------------------------------------

/// Batch norm over (N,H,W) per channel. In training mode uses batch moments
/// and updates running stats in place; in eval mode uses the running stats.
Var batch_norm2d(const Var& x, const Var& gamma, const Var& beta,
                 Tensor& running_mean, Tensor& running_var, bool training,
                 float momentum = 0.1f, float eps = 1e-5f);

/// Strictly-const eval-mode batch norm: reads the frozen running stats and
/// never writes them. Shares the normalize/backward body with batch_norm2d,
/// so the result is bit-identical to batch_norm2d(..., training=false, ...).
/// This is what lets a published ModelSnapshot's forward be const-qualified
/// and therefore safe under concurrent serving workers.
Var batch_norm2d_eval(const Var& x, const Var& gamma, const Var& beta,
                      const Tensor& running_mean, const Tensor& running_var,
                      float eps = 1e-5f);

/// Inverted dropout; identity when !training or p == 0.
Var dropout(const Var& x, float p, bool training, Rng& rng);

// ---- classification heads ----------------------------------------------------

Var softmax(const Var& logits);           ///< row-wise, 2-D
Var log_softmax(const Var& logits);       ///< row-wise, 2-D

/// Mean cross-entropy of logits (n, c) against integer labels.
Var cross_entropy(const Var& logits, const std::vector<std::int64_t>& labels);

/// Mean KL(p || q) with p, q row-wise distributions given as probabilities
/// (p) and log-probabilities (log_q). Differentiable through both.
Var kl_div(const Var& p, const Var& log_q);

}  // namespace ibrar::ag
