#include <cmath>
#include <stdexcept>

#include "autograd/ops.hpp"
#include "tensor/ops.hpp"

namespace ibrar::ag {

namespace {

/// Shared normalize + autograd tail of batch norm, applied to per-channel
/// moments computed by either entry point. Keeping one body is what makes
/// batch_norm2d_eval bit-identical to batch_norm2d with training=false.
Var batch_norm2d_apply(const Var& x, const Var& gamma, const Var& beta,
                       const Tensor& mean_c, const Tensor& var_c,
                       bool training, float eps) {
  const Tensor& xv = x.value();
  const auto nN = xv.dim(0), c = xv.dim(1), h = xv.dim(2), w = xv.dim(3);
  const std::int64_t per_channel = nN * h * w;
  const auto spatial = h * w;

  Tensor inv_std({c});
  for (std::int64_t ic = 0; ic < c; ++ic) {
    inv_std[ic] = 1.0f / std::sqrt(var_c[ic] + eps);
  }

  Tensor xhat(xv.shape());
  Tensor out(xv.shape());
  {
    const float* px = xv.data().data();
    float* ph = xhat.data().data();
    float* po = out.data().data();
    const float* pg = gamma.value().data().data();
    const float* pb = beta.value().data().data();
    for (std::int64_t in_n = 0; in_n < nN; ++in_n) {
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const std::int64_t off = (in_n * c + ic) * spatial;
        const float mu = mean_c[ic], is = inv_std[ic], g = pg[ic], b = pb[ic];
        for (std::int64_t k = 0; k < spatial; ++k) {
          const float xh = (px[off + k] - mu) * is;
          ph[off + k] = xh;
          po[off + k] = g * xh + b;
        }
      }
    }
  }

  const Shape x_shape = xv.shape();
  return make_op(std::move(out), {x, gamma, beta},
                 [xhat, inv_std, x_shape, training, c, spatial, nN,
                  per_channel](Node& n) {
    const float* pg = n.grad.data().data();
    const float* ph = xhat.data().data();
    const float* pgam = n.parents[1]->value.data().data();

    // Per-channel sums of g and g*xhat used by every branch.
    Tensor sum_g({c});
    Tensor sum_gx({c});
    for (std::int64_t in_n = 0; in_n < nN; ++in_n) {
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const std::int64_t off = (in_n * c + ic) * spatial;
        double sg = 0.0, sgx = 0.0;
        for (std::int64_t k = 0; k < spatial; ++k) {
          sg += pg[off + k];
          sgx += double(pg[off + k]) * ph[off + k];
        }
        sum_g[ic] += static_cast<float>(sg);
        sum_gx[ic] += static_cast<float>(sgx);
      }
    }

    if (n.parents[1]->requires_grad) n.parents[1]->accumulate(sum_gx);
    if (n.parents[2]->requires_grad) n.parents[2]->accumulate(sum_g);

    if (n.parents[0]->requires_grad) {
      Tensor gx(x_shape);
      float* pgx = gx.data().data();
      const float m = static_cast<float>(per_channel);
      for (std::int64_t in_n = 0; in_n < nN; ++in_n) {
        for (std::int64_t ic = 0; ic < c; ++ic) {
          const std::int64_t off = (in_n * c + ic) * spatial;
          const float gam_is = pgam[ic] * inv_std[ic];
          if (training) {
            const float mg = sum_g[ic] / m;
            const float mgx = sum_gx[ic] / m;
            for (std::int64_t k = 0; k < spatial; ++k) {
              pgx[off + k] = gam_is * (pg[off + k] - mg - ph[off + k] * mgx);
            }
          } else {
            // Running stats are constants in eval mode.
            for (std::int64_t k = 0; k < spatial; ++k) {
              pgx[off + k] = gam_is * pg[off + k];
            }
          }
        }
      }
      n.parents[0]->accumulate(gx);
    }
  });
}

}  // namespace

Var batch_norm2d(const Var& x, const Var& gamma, const Var& beta,
                 Tensor& running_mean, Tensor& running_var, bool training,
                 float momentum, float eps) {
  const Tensor& xv = x.value();
  if (xv.rank() != 4) throw std::invalid_argument("batch_norm2d: NCHW only");
  const auto nN = xv.dim(0), c = xv.dim(1), h = xv.dim(2), w = xv.dim(3);
  const std::int64_t per_channel = nN * h * w;
  const auto spatial = h * w;

  Tensor mean_c({c});
  Tensor var_c({c});
  if (training) {
    const float* px = xv.data().data();
    for (std::int64_t ic = 0; ic < c; ++ic) {
      double s = 0.0, s2 = 0.0;
      for (std::int64_t in_n = 0; in_n < nN; ++in_n) {
        const float* plane = px + (in_n * c + ic) * spatial;
        for (std::int64_t k = 0; k < spatial; ++k) {
          s += plane[k];
          s2 += double(plane[k]) * plane[k];
        }
      }
      const double mu = s / per_channel;
      mean_c[ic] = static_cast<float>(mu);
      var_c[ic] = static_cast<float>(std::max(0.0, s2 / per_channel - mu * mu));
    }
    for (std::int64_t ic = 0; ic < c; ++ic) {
      running_mean[ic] = (1 - momentum) * running_mean[ic] + momentum * mean_c[ic];
      running_var[ic] = (1 - momentum) * running_var[ic] + momentum * var_c[ic];
    }
  } else {
    mean_c = running_mean;
    var_c = running_var;
  }
  return batch_norm2d_apply(x, gamma, beta, mean_c, var_c, training, eps);
}

Var batch_norm2d_eval(const Var& x, const Var& gamma, const Var& beta,
                      const Tensor& running_mean, const Tensor& running_var,
                      float eps) {
  if (x.value().rank() != 4) {
    throw std::invalid_argument("batch_norm2d_eval: NCHW only");
  }
  return batch_norm2d_apply(x, gamma, beta, running_mean, running_var,
                            /*training=*/false, eps);
}

Var dropout(const Var& x, float p, bool training, Rng& rng) {
  if (!training || p <= 0.0f) return x;
  if (p >= 1.0f) throw std::invalid_argument("dropout: p must be < 1");
  Tensor mask(x.shape());
  const float scale = 1.0f / (1.0f - p);
  for (auto& m : mask.vec()) m = rng.bernoulli(1.0 - p) ? scale : 0.0f;
  Tensor out = ibrar::mul(x.value(), mask);
  return make_op(std::move(out), {x}, [mask](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->accumulate(ibrar::mul(n.grad, mask));
  });
}

}  // namespace ibrar::ag
