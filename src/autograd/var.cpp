#include "autograd/var.hpp"

#include <stdexcept>
#include <unordered_set>

#include "runtime/parallel_for.hpp"

namespace ibrar::ag {
namespace {

bool& grad_flag() {
  thread_local bool enabled = true;
  return enabled;
}

}  // namespace

void Node::accumulate(const Tensor& g) {
  if (!grad_ready) {
    grad = Tensor(value.shape());
    grad_ready = true;
  }
  if (!(g.shape() == grad.shape())) {
    throw std::logic_error("grad shape mismatch: " + shape_str(g.shape()) +
                           " vs " + shape_str(grad.shape()));
  }
  auto pg = grad.data();
  const auto ps = g.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(pg.size()), runtime::kElementwiseGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto u = static_cast<std::size_t>(i);
          pg[u] += ps[u];
        }
      });
}

Var::Var(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::grad() const {
  if (!node_->grad_ready) {
    node_->grad = Tensor(node_->value.shape());
    node_->grad_ready = true;
  }
  return node_->grad;
}

void Var::zero_grad() {
  node_->grad = Tensor(node_->value.shape());
  node_->grad_ready = true;
}

void Var::backward() {
  if (!defined()) throw std::logic_error("backward on undefined Var");
  if (node_->value.numel() != 1) {
    throw std::logic_error("backward requires a scalar root, got shape " +
                           shape_str(node_->value.shape()));
  }

  // Iterative post-order DFS for the topological order (recursion would
  // overflow on deep VGG graphs).
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [n, next_child] = stack.back();
    if (next_child < n->parents.size()) {
      Node* child = n->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      topo.push_back(n);
      stack.pop_back();
    }
  }

  node_->accumulate(Tensor(node_->value.shape(), 1.0f));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad_ready) n->backward_fn(*n);
  }
}

bool grad_enabled() { return grad_flag(); }

NoGradGuard::NoGradGuard() : prev_(grad_flag()) { grad_flag() = false; }
NoGradGuard::~NoGradGuard() { grad_flag() = prev_; }

Var make_op(Tensor value, std::vector<Var> parents,
            std::function<void(Node&)> backward_fn) {
  bool needs = false;
  if (grad_enabled()) {
    for (const auto& p : parents) needs = needs || p.requires_grad();
  }
  if (!needs) return Var::constant(std::move(value));

  Var out(std::move(value), true);
  auto node = out.node();
  node->parents.reserve(parents.size());
  for (auto& p : parents) node->parents.push_back(p.node());
  node->backward_fn = std::move(backward_fn);
  return out;
}

Var detach(const Var& v) { return Var::constant(v.value()); }

}  // namespace ibrar::ag
