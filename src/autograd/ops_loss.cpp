#include <cmath>
#include <stdexcept>

#include "autograd/ops.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::ag {

Var softmax(const Var& logits) {
  Tensor s = softmax_rows(logits.value());
  return make_op(s, {logits}, [s](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    // dx = s * (g - rowsum(g * s))
    const auto m = s.dim(0), c = s.dim(1);
    Tensor gx(s.shape());
    for (std::int64_t i = 0; i < m; ++i) {
      double inner = 0.0;
      for (std::int64_t j = 0; j < c; ++j) {
        inner += double(n.grad.at(i, j)) * s.at(i, j);
      }
      for (std::int64_t j = 0; j < c; ++j) {
        gx.at(i, j) = s.at(i, j) * (n.grad.at(i, j) - static_cast<float>(inner));
      }
    }
    n.parents[0]->accumulate(gx);
  });
}

Var log_softmax(const Var& logits) {
  Tensor ls = log_softmax_rows(logits.value());
  Tensor s = softmax_rows(logits.value());
  return make_op(ls, {logits}, [s](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    // dx = g - softmax * rowsum(g)
    const auto m = s.dim(0), c = s.dim(1);
    Tensor gx(s.shape());
    for (std::int64_t i = 0; i < m; ++i) {
      double rs = 0.0;
      for (std::int64_t j = 0; j < c; ++j) rs += n.grad.at(i, j);
      for (std::int64_t j = 0; j < c; ++j) {
        gx.at(i, j) = n.grad.at(i, j) - s.at(i, j) * static_cast<float>(rs);
      }
    }
    n.parents[0]->accumulate(gx);
  });
}

Var cross_entropy(const Var& logits, const std::vector<std::int64_t>& labels) {
  const Tensor& lv = logits.value();
  if (lv.rank() != 2) throw std::invalid_argument("cross_entropy: logits 2-D");
  const auto m = lv.dim(0);
  const auto c = lv.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != m) {
    throw std::invalid_argument("cross_entropy: label count mismatch");
  }
  const Tensor ls = log_softmax_rows(lv);
  double loss = 0.0;
  for (std::int64_t i = 0; i < m; ++i) {
    const auto y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) throw std::out_of_range("cross_entropy label");
    loss -= ls.at(i, y);
  }
  const Tensor probs = softmax_rows(lv);
  return make_op(Tensor::scalar(static_cast<float>(loss / m)), {logits},
                 [probs, labels, m, c](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    const float g = n.grad.item() / static_cast<float>(m);
    Tensor gx = probs;
    for (std::int64_t i = 0; i < m; ++i) {
      gx.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0f;
    }
    for (auto& v : gx.vec()) v *= g;
    (void)c;
    n.parents[0]->accumulate(gx);
  });
}

Var kl_div(const Var& p, const Var& log_q) {
  const Tensor& pv = p.value();
  const Tensor& lqv = log_q.value();
  if (!(pv.shape() == lqv.shape()) || pv.rank() != 2) {
    throw std::invalid_argument("kl_div: p and log_q must be matching 2-D");
  }
  const auto m = pv.dim(0);
  const auto c = pv.dim(1);
  double loss = 0.0;
  Tensor log_p(pv.shape());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      const float pij = std::max(pv.at(i, j), 1e-12f);
      log_p.at(i, j) = std::log(pij);
      loss += double(pv.at(i, j)) * (log_p.at(i, j) - lqv.at(i, j));
    }
  }
  return make_op(Tensor::scalar(static_cast<float>(loss / m)), {p, log_q},
                 [pv, lqv, log_p, m](Node& n) {
    const float g = n.grad.item() / static_cast<float>(m);
    if (n.parents[0]->requires_grad) {
      // d/dp [p (log p - log q)] = log p + 1 - log q
      Tensor gp = ibrar::sub(log_p, lqv);
      for (auto& v : gp.vec()) v = (v + 1.0f) * g;
      n.parents[0]->accumulate(gp);
    }
    if (n.parents[1]->requires_grad) {
      Tensor gq = pv;
      for (auto& v : gq.vec()) v *= -g;
      n.parents[1]->accumulate(gq);
    }
  });
}

}  // namespace ibrar::ag
