#pragma once
// Tape-free dynamic reverse-mode automatic differentiation.
//
// A Var is a shared handle to a graph Node holding a value, an (accumulated)
// gradient, and a backward closure referencing its parent nodes. Graphs are
// rebuilt every forward pass; parameter leaves persist across passes so their
// gradients accumulate until the optimizer clears them — the same contract as
// PyTorch, which keeps the training-loop code in src/train idiomatic.

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar::ag {

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// One vertex of the dynamically-built computation graph.
struct Node {
  Tensor value;
  Tensor grad;                 ///< valid iff grad_ready
  bool grad_ready = false;     ///< grad tensor allocated & shaped
  bool requires_grad = false;  ///< participates in backward
  std::vector<NodePtr> parents;
  /// Accumulates into parents' grads given this node's grad. Null for leaves.
  std::function<void(Node&)> backward_fn;

  /// Add `g` into `grad`, allocating on first touch.
  void accumulate(const Tensor& g);
};

/// Value + gradient handle. Cheap to copy (shared_ptr semantics).
class Var {
 public:
  /// Undefined Var (use defined() to test).
  Var() = default;

  /// Leaf holding `value`; set requires_grad for trainable/attacked leaves.
  explicit Var(Tensor value, bool requires_grad = false);

  /// Leaf that is differentiated (parameters, attack inputs).
  static Var param(Tensor value) { return Var(std::move(value), true); }

  /// Leaf treated as a constant.
  static Var constant(Tensor value) { return Var(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  const Shape& shape() const { return node_->value.shape(); }
  std::int64_t numel() const { return node_->value.numel(); }
  bool requires_grad() const { return node_ != nullptr && node_->requires_grad; }

  /// Gradient accumulated by backward(); zeros of the value's shape if unset.
  const Tensor& grad() const;

  /// Reset this leaf's gradient accumulator.
  void zero_grad();

  /// Run reverse-mode AD from this (scalar) Var; accumulates into every
  /// requires_grad node reachable through the graph.
  void backward();

  NodePtr node() const { return node_; }
  explicit Var(NodePtr node) : node_(std::move(node)) {}

 private:
  NodePtr node_;
};

/// True while gradient recording is disabled (evaluation / attacks' inner
/// forward passes that do not need parameter grads).
bool grad_enabled();

/// RAII guard that disables graph construction in its scope.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Build an op node: value, parents, and a backward closure. When recording is
/// off or no parent requires grad, the result is a detached constant.
Var make_op(Tensor value, std::vector<Var> parents,
            std::function<void(Node&)> backward_fn);

/// Detached copy of `v` (constant leaf sharing the value).
Var detach(const Var& v);

}  // namespace ibrar::ag
