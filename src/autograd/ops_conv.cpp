#include <stdexcept>

#include "autograd/ops.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::ag {

Var conv2d(const Var& x, const Var& w, const Var& bias, const Conv2dSpec& spec) {
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  const bool has_bias = bias.defined();
  Tensor out = ibrar::conv2d(xv, wv, has_bias ? &bias.value() : nullptr, spec);

  // Save im2col columns for backward (recomputing would double conv cost; the
  // models here are small enough that memory is the cheaper trade).
  const Tensor cols = im2col(xv, spec);
  const auto f = wv.dim(0);
  const Tensor wmat = wv.reshape({f, wv.numel() / f});
  const Shape x_shape = xv.shape();
  const Shape w_shape = wv.shape();

  std::vector<Var> parents = {x, w};
  if (has_bias) parents.push_back(bias);

  return make_op(std::move(out), std::move(parents),
                 [cols, wmat, x_shape, w_shape, spec, has_bias](Node& n) {
    const auto nN = n.value.shape()[0];
    const auto nf = n.value.shape()[1];
    const auto spatial = n.value.shape()[2] * n.value.shape()[3];
    // NCHW grad -> (N*OH*OW, F) spatial-major layout used by the GEMM.
    Tensor gprod({nN * spatial, nf});
    {
      const float* pg = n.grad.data().data();
      float* pp = gprod.data().data();
      ibrar::runtime::parallel_for(0, nN, 1, [&](std::int64_t n0, std::int64_t n1) {
        for (std::int64_t in_n = n0; in_n < n1; ++in_n) {
          for (std::int64_t of = 0; of < nf; ++of) {
            const float* plane = pg + (in_n * nf + of) * spatial;
            for (std::int64_t s = 0; s < spatial; ++s) {
              pp[(in_n * spatial + s) * nf + of] = plane[s];
            }
          }
        }
      });
    }
    if (n.parents[0]->requires_grad) {
      const Tensor gcols = ibrar::matmul(gprod, wmat);  // (N*OH*OW, CKK)
      n.parents[0]->accumulate(col2im(gcols, x_shape, spec));
    }
    if (n.parents[1]->requires_grad) {
      Tensor gw = ibrar::matmul_tn(gprod, cols);  // (F, CKK)
      n.parents[1]->accumulate(gw.reshape(w_shape));
    }
    if (has_bias && n.parents[2]->requires_grad) {
      n.parents[2]->accumulate(ibrar::sum_axis(gprod, 0));
    }
  });
}

Var maxpool2d(const Var& x, std::int64_t kernel, std::int64_t stride) {
  PoolResult r = ibrar::maxpool2d(x.value(), kernel, stride);
  const Shape x_shape = x.shape();
  auto argmax = std::move(r.argmax);
  return make_op(std::move(r.out), {x}, [x_shape, argmax](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->accumulate(maxpool2d_backward(n.grad, x_shape, argmax));
  });
}

Var global_avg_pool(const Var& x) {
  const Shape x_shape = x.shape();
  return make_op(ibrar::global_avg_pool(x.value()), {x}, [x_shape](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->accumulate(global_avg_pool_backward(n.grad, x_shape));
  });
}

}  // namespace ibrar::ag
