#include "autograd/gradcheck.hpp"

#include <cmath>

namespace ibrar::ag {

GradCheckResult gradcheck(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var> inputs, double eps, double tol) {
  for (auto& in : inputs) in.zero_grad();
  Var out = fn(inputs);
  out.backward();

  GradCheckResult r;
  for (auto& in : inputs) {
    const Tensor analytic = in.grad();
    Tensor& x = in.mutable_value();
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      const float orig = x[i];
      x[i] = orig + static_cast<float>(eps);
      const double fp = fn(inputs).value().item();
      x[i] = orig - static_cast<float>(eps);
      const double fm = fn(inputs).value().item();
      x[i] = orig;
      const double numeric = (fp - fm) / (2.0 * eps);
      const double a = analytic[i];
      const double abs_err = std::fabs(a - numeric);
      const double rel_err =
          abs_err / std::max(1.0, std::max(std::fabs(a), std::fabs(numeric)));
      r.max_abs_err = std::max(r.max_abs_err, abs_err);
      r.max_rel_err = std::max(r.max_rel_err, rel_err);
    }
  }
  r.ok = r.max_rel_err <= tol;
  return r;
}

}  // namespace ibrar::ag
