#include <cmath>

#include "autograd/ops.hpp"
#include "tensor/ops.hpp"

namespace ibrar::ag {
namespace {

/// Route `g` into parent `i` of `n`, reducing broadcast dims.
void accum_broadcast(Node& n, std::size_t i, const Tensor& g) {
  auto& p = n.parents[i];
  if (!p->requires_grad) return;
  p->accumulate(reduce_to_shape(g, p->value.shape()));
}

void accum(Node& n, std::size_t i, const Tensor& g) {
  auto& p = n.parents[i];
  if (p->requires_grad) p->accumulate(g);
}

}  // namespace

Var add(const Var& a, const Var& b) {
  return make_op(ibrar::add(a.value(), b.value()), {a, b}, [](Node& n) {
    accum_broadcast(n, 0, n.grad);
    accum_broadcast(n, 1, n.grad);
  });
}

Var sub(const Var& a, const Var& b) {
  return make_op(ibrar::sub(a.value(), b.value()), {a, b}, [](Node& n) {
    accum_broadcast(n, 0, n.grad);
    accum_broadcast(n, 1, ibrar::neg(n.grad));
  });
}

Var mul(const Var& a, const Var& b) {
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return make_op(ibrar::mul(av, bv), {a, b}, [av, bv](Node& n) {
    accum_broadcast(n, 0, ibrar::mul(n.grad, bv));
    accum_broadcast(n, 1, ibrar::mul(n.grad, av));
  });
}

Var div(const Var& a, const Var& b) {
  const Tensor av = a.value();
  const Tensor bv = b.value();
  return make_op(ibrar::div(av, bv), {a, b}, [av, bv](Node& n) {
    accum_broadcast(n, 0, ibrar::div(n.grad, bv));
    // d/db (a/b) = -a / b^2
    accum_broadcast(n, 1,
                    ibrar::neg(ibrar::div(ibrar::mul(n.grad, av),
                                          ibrar::mul(bv, bv))));
  });
}

Var add_scalar(const Var& a, float s) {
  return make_op(ibrar::add_scalar(a.value(), s), {a},
                 [](Node& n) { accum(n, 0, n.grad); });
}

Var mul_scalar(const Var& a, float s) {
  return make_op(ibrar::mul_scalar(a.value(), s), {a}, [s](Node& n) {
    accum(n, 0, ibrar::mul_scalar(n.grad, s));
  });
}

Var neg(const Var& a) { return mul_scalar(a, -1.0f); }

Var exp(const Var& a) {
  Tensor out = ibrar::exp(a.value());
  return make_op(out, {a}, [out](Node& n) {
    accum(n, 0, ibrar::mul(n.grad, out));
  });
}

Var log(const Var& a) {
  const Tensor av = a.value();
  return make_op(ibrar::log(av), {a}, [av](Node& n) {
    // matches the clamped forward: d log(max(x, eps)) / dx ~= 1/max(x, eps)
    accum(n, 0, ibrar::div(n.grad, ibrar::maximum(av, Tensor::scalar(1e-38f))));
  });
}

Var sqrt(const Var& a) {
  Tensor out = ibrar::sqrt(a.value());
  return make_op(out, {a}, [out](Node& n) {
    accum(n, 0, ibrar::div(n.grad,
                           ibrar::mul_scalar(ibrar::maximum(out, Tensor::scalar(1e-12f)), 2.0f)));
  });
}

Var square(const Var& a) {
  const Tensor av = a.value();
  return make_op(ibrar::square(av), {a}, [av](Node& n) {
    accum(n, 0, ibrar::mul(n.grad, ibrar::mul_scalar(av, 2.0f)));
  });
}

Var pow_scalar(const Var& a, float p) {
  const Tensor av = a.value();
  return make_op(ibrar::pow_scalar(av, p), {a}, [av, p](Node& n) {
    accum(n, 0, ibrar::mul(n.grad,
                           ibrar::mul_scalar(ibrar::pow_scalar(av, p - 1.0f), p)));
  });
}

Var relu(const Var& a) {
  const Tensor av = a.value();
  return make_op(ibrar::relu(av), {a}, [av](Node& n) {
    accum(n, 0, ibrar::mul(n.grad, ibrar::greater(av, Tensor::scalar(0.0f))));
  });
}

Var tanh(const Var& a) {
  Tensor out = ibrar::tanh(a.value());
  return make_op(out, {a}, [out](Node& n) {
    // 1 - tanh^2
    accum(n, 0, ibrar::mul(n.grad, ibrar::sub(Tensor::scalar(1.0f),
                                              ibrar::square(out))));
  });
}

Var sigmoid(const Var& a) {
  Tensor out = ibrar::sigmoid(a.value());
  return make_op(out, {a}, [out](Node& n) {
    accum(n, 0, ibrar::mul(n.grad,
                           ibrar::mul(out, ibrar::sub(Tensor::scalar(1.0f), out))));
  });
}

Var abs(const Var& a) {
  const Tensor av = a.value();
  return make_op(ibrar::abs(av), {a}, [av](Node& n) {
    accum(n, 0, ibrar::mul(n.grad, ibrar::sign(av)));
  });
}

}  // namespace ibrar::ag
