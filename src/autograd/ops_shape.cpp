#include <stdexcept>

#include "autograd/ops.hpp"
#include "tensor/ops.hpp"

namespace ibrar::ag {

Var reshape(const Var& a, Shape new_shape) {
  const Shape old_shape = a.shape();
  return make_op(a.value().reshape(std::move(new_shape)), {a},
                 [old_shape](Node& n) {
                   if (n.parents[0]->requires_grad) {
                     n.parents[0]->accumulate(n.grad.reshape(old_shape));
                   }
                 });
}

Var flatten2d(const Var& a) {
  if (a.shape().empty()) throw std::invalid_argument("flatten2d: scalar");
  const auto n = a.shape()[0];
  return reshape(a, {n, a.numel() / n});
}

Var concat_rows(const std::vector<Var>& parts) {
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<std::int64_t> row_counts;
  for (const auto& p : parts) {
    values.push_back(p.value());
    row_counts.push_back(p.shape()[0]);
  }
  return make_op(ibrar::concat_rows(values), {parts.begin(), parts.end()},
                 [row_counts](Node& n) {
                   const std::int64_t row_size =
                       n.value.numel() / n.value.shape()[0];
                   std::int64_t row = 0;
                   for (std::size_t i = 0; i < n.parents.size(); ++i) {
                     auto& p = n.parents[i];
                     if (p->requires_grad) {
                       Tensor g(p->value.shape());
                       std::copy_n(n.grad.data().begin() + row * row_size,
                                   g.numel(), g.data().begin());
                       p->accumulate(g);
                     }
                     row += row_counts[i];
                   }
                 });
}

Var slice_rows(const Var& a, std::int64_t begin, std::int64_t end) {
  if (a.shape().empty() || begin < 0 || end > a.shape()[0] || begin >= end) {
    throw std::invalid_argument("slice_rows: bad range");
  }
  const std::int64_t row_size = a.numel() / a.shape()[0];
  Shape out_shape = a.shape();
  out_shape[0] = end - begin;
  Tensor out(out_shape);
  std::copy_n(a.value().data().begin() + begin * row_size, out.numel(),
              out.data().begin());
  const Shape in_shape = a.shape();
  return make_op(std::move(out), {a}, [begin, row_size, in_shape](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor g(in_shape);
    std::copy_n(n.grad.data().begin(), n.grad.numel(),
                g.data().begin() + begin * row_size);
    n.parents[0]->accumulate(g);
  });
}

Var gather_cols(const Var& a, const std::vector<std::int64_t>& idx) {
  if (a.shape().size() != 2) throw std::invalid_argument("gather_cols: 2-D only");
  const auto rows = a.shape()[0];
  const auto cols = a.shape()[1];
  if (static_cast<std::int64_t>(idx.size()) != rows) {
    throw std::invalid_argument("gather_cols: index count != rows");
  }
  Tensor out({rows, 1});
  for (std::int64_t i = 0; i < rows; ++i) {
    const auto j = idx[static_cast<std::size_t>(i)];
    if (j < 0 || j >= cols) throw std::out_of_range("gather_cols index");
    out.at(i, 0) = a.value().at(i, j);
  }
  const Shape in_shape = a.shape();
  return make_op(std::move(out), {a}, [idx, in_shape](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor g(in_shape);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      g.at(static_cast<std::int64_t>(i), idx[i]) =
          n.grad.at(static_cast<std::int64_t>(i), 0);
    }
    n.parents[0]->accumulate(g);
  });
}

}  // namespace ibrar::ag
