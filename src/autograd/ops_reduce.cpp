#include "autograd/ops.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::ag {

Var sum(const Var& a) {
  const Shape in_shape = a.shape();
  return make_op(ibrar::sum(a.value()), {a}, [in_shape](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->accumulate(Tensor(in_shape, n.grad.item()));
  });
}

Var mean(const Var& a) {
  const Shape in_shape = a.shape();
  const float inv = 1.0f / static_cast<float>(a.numel());
  return make_op(ibrar::mean(a.value()), {a}, [in_shape, inv](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->accumulate(Tensor(in_shape, n.grad.item() * inv));
  });
}

Var sum_axis(const Var& a, std::int64_t axis, bool keepdim) {
  const Shape in_shape = a.shape();
  if (axis < 0) axis += static_cast<std::int64_t>(in_shape.size());
  Tensor out = ibrar::sum_axis(a.value(), axis, keepdim);
  return make_op(std::move(out), {a}, [in_shape, axis, keepdim](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    // Re-insert the reduced axis as 1, then broadcast the gradient back.
    Shape keep_shape = in_shape;
    keep_shape[static_cast<std::size_t>(axis)] = 1;
    const Tensor g = keepdim ? n.grad : n.grad.reshape(keep_shape);
    n.parents[0]->accumulate(ibrar::broadcast_to(g, in_shape));
  });
}

Var mean_axis(const Var& a, std::int64_t axis, bool keepdim) {
  const auto ax = axis < 0 ? axis + a.value().rank() : axis;
  const float inv = 1.0f / static_cast<float>(a.value().dim(ax));
  return mul_scalar(sum_axis(a, axis, keepdim), inv);
}

}  // namespace ibrar::ag
