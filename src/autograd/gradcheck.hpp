#pragma once
// Finite-difference gradient verification used by the test suite.

#include <functional>
#include <vector>

#include "autograd/var.hpp"

namespace ibrar::ag {

struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  bool ok = false;
};

/// Compare analytic gradients of `fn` (scalar-valued over `inputs`) against
/// central finite differences. Inputs must be leaves with requires_grad.
GradCheckResult gradcheck(
    const std::function<Var(const std::vector<Var>&)>& fn,
    std::vector<Var> inputs, double eps = 1e-3, double tol = 5e-2);

}  // namespace ibrar::ag
