#pragma once
// Umbrella header: the full public API of the IB-RAR reproduction library.
//
//   #include "ibrar.hpp"
//
// pulls in every subsystem. Individual headers remain includable for faster
// incremental builds; this file exists for downstream consumers who prefer a
// single entry point.

// Parallel execution runtime
#include "runtime/parallel_for.hpp"  // deterministic parallel_for / reduce
#include "runtime/thread_pool.hpp"   // global pool, IBRAR_NUM_THREADS

// Utilities
#include "util/env.hpp"        // profile switches & typed env access
#include "util/logging.hpp"    // leveled stderr logging
#include "util/rng.hpp"        // deterministic RNG
#include "util/serialize.hpp"  // checkpoint format
#include "util/stopwatch.hpp"
#include "util/table.hpp"      // aligned ASCII tables

// Numerics
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/reduce.hpp"
#include "tensor/tensor.hpp"

// Autograd
#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "autograd/var.hpp"

// Neural networks & models
#include "models/classifier.hpp"
#include "models/mlp.hpp"
#include "models/registry.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "models/wideresnet.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

// Data
#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "data/registry.hpp"
#include "data/synthetic.hpp"

// Mutual information machinery
#include "mi/binned_mi.hpp"
#include "mi/channel_score.hpp"
#include "mi/hsic.hpp"
#include "mi/kernels.hpp"
#include "mi/objective.hpp"
#include "mi/tsne.hpp"

// Attacks
#include "attacks/adaptive.hpp"
#include "attacks/attack.hpp"
#include "attacks/cw.hpp"
#include "attacks/fab.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/square.hpp"

// Training
#include "train/evaluate.hpp"
#include "train/hbar.hpp"
#include "train/mart.hpp"
#include "train/metrics.hpp"
#include "train/objective.hpp"
#include "train/optimizer.hpp"
#include "train/trades.hpp"
#include "train/trainer.hpp"
#include "train/vib.hpp"

// IB-RAR (the paper's contribution + future-work extension)
#include "core/feature_mask.hpp"
#include "core/ibrar.hpp"
#include "core/mi_loss.hpp"
#include "core/robust_layers.hpp"
#include "core/shared_features.hpp"
